"""The fuzz generators: determinism, family semantics, lattice stress.

Also the certificate-as-oracle regression pins (one per new workload
family): each pinned program is regenerated from its recorded
``(family, seed)`` and its value-iteration bracket must land on the
value measured at promotion time — so an engine change that moves any
bracket on these adversarial shapes fails loudly.
"""

import pytest

from repro.fuzz import (
    ALL_FAMILIES,
    FAMILIES,
    GENERATOR_VERSION,
    CorpusError,
    corpus_entry,
    corpus_plan,
    failure_entry,
    generate,
    load_entry,
    program_seed,
    regenerate,
    write_entry,
)
from repro.fuzz.generators import (
    NEAR_CAP_DENOMINATOR,
    OVER_CAP_DENOMINATOR,
    ProgramGenerator,
)
from repro.lang import compile_source
from repro.core.fixpoint import value_iteration
from repro.pts import validate_pts

pytestmark = pytest.mark.fuzz_smoke


def _compile(program):
    return compile_source(
        program.source, integer_mode=program.integer_mode, name=program.name
    ).pts


class TestDeterminism:
    def test_generate_is_pure_in_family_and_seed(self):
        for family in ALL_FAMILIES:
            for seed in (0, 7, 12345):
                a, b = generate(family, seed), generate(family, seed)
                assert a == b
                assert a.source == b.source
                assert a.generator_version == GENERATOR_VERSION

    def test_distinct_seeds_distinct_programs(self):
        sources = {generate("birth-death", s).source for s in range(8)}
        assert len(sources) > 1

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz family"):
            generate("nope", 0)
        with pytest.raises(ValueError, match="unknown fuzz family"):
            corpus_plan(0, 2, families=("birth-death", "nope"))

    def test_corpus_plan_round_robins_with_derived_seeds(self):
        plan = corpus_plan(9, 6)
        assert [p.family for p in plan] == list(FAMILIES) + list(FAMILIES[:2])
        assert [p.seed for p in plan] == [program_seed(9, i) for i in range(6)]
        # derived streams of different farm seeds never collide
        assert program_seed(9, 0) != program_seed(10, 0)


class TestFamilies:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_compiles_and_validates(self, family):
        for seed in range(4):
            program = generate(family, seed)
            pts = _compile(program)
            report = validate_pts(pts)
            assert report.ok, f"{program.name}\n{report.problems}\n{program.source}"

    def test_integer_families_stay_on_the_integer_lattice(self):
        for family in ("birth-death", "gridworld", "inventory"):
            for seed in range(4):
                program = generate(family, seed)
                assert program.integer_mode
                assert _compile(program).integrality().integral, program.source

    def test_mixed_lattice_stresses_scaled_admission_both_ways(self):
        admitted = refused = 0
        for seed in range(25):
            program = generate("mixed-lattice", seed)
            assert not program.integer_mode
            report = _compile(program).integrality()
            assert not report.integral, program.source
            if program.params["over_cap"]:
                assert report.scale is None, program.source
                refused += 1
            else:
                assert report.scale is not None, program.source
                admitted += 1
        # the family must hit the admission boundary from both sides
        assert admitted and refused

    def test_mixed_lattice_reaches_near_cap_multipliers(self):
        seen = set()
        for seed in range(25):
            program = generate("mixed-lattice", seed)
            seen.add(program.params["den"])
        assert NEAR_CAP_DENOMINATOR in seen


class TestProgramGenerator:
    def _gen(self, seed, profile):
        import random

        return ProgramGenerator(random.Random(seed), profile=profile)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            self._gen(0, "bogus")

    def test_pipeline_profile_is_integral(self):
        for seed in range(6):
            gen = self._gen(seed, "pipeline")
            assert gen.integer_mode
            pts = compile_source(gen.program(), name=f"p{seed}").pts
            assert pts.integrality().integral

    def test_pipeline_profile_emits_nested_conditionals(self):
        sources = "\n".join(self._gen(seed, "pipeline").program() for seed in range(30))
        # a comparison conditional (not prob) inside the loop body
        assert any(
            line.strip().startswith("if ") and "prob" not in line
            for line in sources.split("\n")
        )

    def test_fractional_profile_reaches_near_cap_denominators(self):
        admitted = 0
        hits = 0
        for seed in range(20):
            source = self._gen(seed, "fractional").program()
            if f"/{NEAR_CAP_DENOMINATOR}" not in source:
                continue
            hits += 1
            report = compile_source(
                source, integer_mode=False, name=f"f{seed}"
            ).pts.integrality()
            # a lone near-cap denominator is admitted with a huge
            # multiplier; mixing it with other denominators may push the
            # per-variable LCM past the cap, which must then refuse
            if report.scale is not None:
                assert max(report.scale) >= 1000
                admitted += 1
        assert hits, "no fractional program used the near-cap denominator"
        assert admitted, "no near-cap program was scale-admitted"

    def test_reject_profile_forces_scale_rejection(self):
        for seed in range(8):
            source = self._gen(seed, "reject").program()
            report = compile_source(
                source, integer_mode=False, name=f"r{seed}"
            ).pts.integrality()
            assert report.scale is None, source
        # both rejection shapes appear somewhere in the stream
        sources = "\n".join(self._gen(s, "reject").program() for s in range(20))
        assert f"/{OVER_CAP_DENOMINATOR}" in sources
        assert "/ 2 + 1" in sources


class TestSeedDiscipline:
    """Satellite: every artifact records its replay triple and round-trips
    to the identical program text."""

    def test_failure_artifact_roundtrips_to_identical_text(self, tmp_path):
        program = generate("inventory", program_seed(42, 2))
        path = tmp_path / "failure.json"
        write_entry(
            path,
            failure_entry(
                program,
                "bracket-overlap",
                "synthetic",
                shrunk_source="x := 0\nassert x <= 0",
                injected=True,
            ),
        )
        entry = load_entry(path)
        assert entry["seed"] == program.seed
        assert entry["generator_version"] == GENERATOR_VERSION
        assert entry["discrepancy"]["kind"] == "bracket-overlap"
        assert entry["discrepancy"]["injected"] is True
        replayed = regenerate(entry)
        assert replayed.source == program.source
        assert replayed == program

    def test_corpus_entry_roundtrips(self, tmp_path):
        program = generate("gridworld", 3)
        path = write_entry(tmp_path / "c.json", corpus_entry(program))
        assert regenerate(load_entry(path)).source == program.source

    def test_regenerate_refuses_stale_generator_version(self, tmp_path):
        entry = corpus_entry(generate("birth-death", 1))
        entry["generator_version"] = "fuzz-gen.v0"
        with pytest.raises(CorpusError, match="replay would not be faithful"):
            regenerate(entry)

    def test_regenerate_refuses_drifted_source(self):
        entry = corpus_entry(generate("birth-death", 1))
        entry["source"] += "\nskip"
        with pytest.raises(CorpusError, match="drifted"):
            regenerate(entry)

    def test_load_entry_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(CorpusError, match="not a repro-fuzz-corpus"):
            load_entry(path)


#: (family, seed) -> violation probability measured at promotion time.
#: These are the certificate-as-oracle regression pins: the bracket is
#: tight (width < 1e-9), so a drifting engine cannot hide inside it.
FAMILY_PINS = {
    ("birth-death", 6): 0.4236205457353,
    ("gridworld", 0): 0.3300695518376392,
    ("inventory", 4): 0.5213399603962898,
    ("mixed-lattice", 2): 0.3326016962528229,
}


@pytest.mark.parametrize("family,seed", sorted(FAMILY_PINS))
def test_family_bracket_pin(family, seed):
    program = generate(family, seed)
    pts = _compile(program)
    result = value_iteration(pts, max_states=50_000)
    assert result.tight, program.source
    pin = FAMILY_PINS[(family, seed)]
    assert result.lower - 1e-9 <= pin <= result.upper + 1e-9, program.source
    assert abs(0.5 * (result.lower + result.upper) - pin) < 1e-8


def test_promoted_finds_match_their_replay_triples():
    """The frozen registry text is the literal corpus entry."""
    from repro.programs import get_benchmark
    from repro.programs.fuzzed import FUZZED_SOURCES

    triples = {
        "fz-queue-surge": ("birth-death", 6),
        "fz-grid-trap": ("gridworld", 0),
        "fz-lattice-strain": ("mixed-lattice", 2),
    }
    for name, (family, seed) in triples.items():
        assert FUZZED_SOURCES[name].strip() == generate(family, seed).source.strip()
        inst = get_benchmark(name)
        result = value_iteration(inst.pts, max_states=50_000)
        pin = FAMILY_PINS[(family, seed)]
        assert result.lower - 1e-9 <= pin <= result.upper + 1e-9


def test_promoted_finds_are_bench_workloads():
    from repro.experiments.fixpoint_bench import FIXPOINT_WORKLOADS

    for name in ("fz-queue-surge", "fz-grid-trap", "fz-lattice-strain"):
        source, max_states, integer_mode = FIXPOINT_WORKLOADS[name]
        assert max_states <= 5_000  # reference comparison must stay cheap
        assert integer_mode == (name != "fz-lattice-strain")
