"""Tests for sampling-variable distributions."""

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError, UnboundedSupportError
from repro.pts.distributions import (
    DiscreteDistribution,
    NormalDistribution,
    PointMass,
    UniformDistribution,
    bernoulli,
)


class TestPointMass:
    def test_everything(self):
        d = PointMass("3/2")
        assert d.mean() == Fraction(3, 2)
        assert d.support() == (Fraction(3, 2), Fraction(3, 2))
        assert d.sample(random.Random(0)) == 1.5
        assert d.log_mgf(2.0) == pytest.approx(3.0)
        assert d.d_log_mgf(2.0) == pytest.approx(1.5)
        assert d.atoms() == [(1, Fraction(3, 2))]


class TestDiscrete:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ModelError):
            DiscreteDistribution([(Fraction(1, 2), 0)])

    def test_nonpositive_probability_rejected(self):
        with pytest.raises(ModelError):
            DiscreteDistribution([(0, 1), (1, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            DiscreteDistribution([])

    def test_duplicate_values_merged(self):
        d = DiscreteDistribution([("1/4", 1), ("1/4", 1), ("1/2", 0)])
        assert d.atoms() == [(Fraction(1, 2), 0), (Fraction(1, 2), 1)]

    def test_mean(self):
        d = bernoulli("3/4")
        assert d.mean() == Fraction(3, 4)

    def test_support(self):
        d = DiscreteDistribution([("1/3", -2), ("1/3", 5), ("1/3", 1)])
        assert d.support() == (-2, 5)

    def test_bounded_support_ok(self):
        assert bernoulli("1/2").bounded_support() == (0, 1)

    def test_log_mgf_matches_direct(self):
        d = bernoulli("1/4")
        t = 0.7
        direct = math.log(0.25 * math.exp(t) + 0.75)
        assert d.log_mgf(t) == pytest.approx(direct)

    def test_log_mgf_at_zero(self):
        assert bernoulli("1/4").log_mgf(0.0) == pytest.approx(0.0)

    @given(st.floats(min_value=-5, max_value=5))
    def test_d_log_mgf_is_numeric_derivative(self, t):
        d = DiscreteDistribution([("1/2", -1), ("1/3", 0), ("1/6", 2)])
        h = 1e-6
        numeric = (d.log_mgf(t + h) - d.log_mgf(t - h)) / (2 * h)
        assert d.d_log_mgf(t) == pytest.approx(numeric, abs=1e-4)

    def test_sampling_frequencies(self):
        d = bernoulli("1/4")
        rng = random.Random(42)
        hits = sum(d.sample(rng) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.25, abs=0.02)

    def test_d_log_mgf_at_zero_is_mean(self):
        d = DiscreteDistribution([("1/2", -1), ("1/2", 3)])
        assert d.d_log_mgf(0.0) == pytest.approx(1.0)


class TestUniform:
    def test_bounds_validated(self):
        with pytest.raises(ModelError):
            UniformDistribution(1, 1)

    def test_mean_support(self):
        d = UniformDistribution(-1, 3)
        assert d.mean() == 1
        assert d.support() == (-1, 3)

    def test_atoms_none(self):
        assert UniformDistribution(0, 1).atoms() is None

    def test_log_mgf_closed_form(self):
        d = UniformDistribution(0, 2)
        t = 1.3
        direct = math.log((math.exp(2 * t) - 1.0) / (2 * t))
        assert d.log_mgf(t) == pytest.approx(direct)

    def test_log_mgf_negative_t(self):
        d = UniformDistribution(-1, 1)
        t = -2.0
        direct = math.log((math.exp(t) - math.exp(-t)) / (2 * t))
        assert d.log_mgf(t) == pytest.approx(direct)

    def test_log_mgf_near_zero_series(self):
        d = UniformDistribution(0, 1)
        # second-order: t/2 + t^2/24
        t = 1e-8
        assert d.log_mgf(t) == pytest.approx(t / 2, abs=1e-12)

    @given(st.floats(min_value=-4, max_value=4))
    def test_d_log_mgf_is_numeric_derivative(self, t):
        d = UniformDistribution(-1, 2)
        h = 1e-6
        numeric = (d.log_mgf(t + h) - d.log_mgf(t - h)) / (2 * h)
        assert d.d_log_mgf(t) == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_sample_within_support(self):
        d = UniformDistribution(2, 3)
        rng = random.Random(0)
        for _ in range(100):
            assert 2 <= d.sample(rng) <= 3

    @given(st.floats(min_value=-3, max_value=3))
    def test_mgf_convexity_in_t(self, t):
        # log-MGFs are convex; check the midpoint inequality vs t=0
        d = UniformDistribution(-1, 1)
        mid = d.log_mgf(t / 2)
        assert mid <= 0.5 * d.log_mgf(t) + 0.5 * d.log_mgf(0.0) + 1e-9


class TestNormal:
    def test_sigma_validated(self):
        with pytest.raises(ModelError):
            NormalDistribution(0, 0)

    def test_unbounded_support(self):
        d = NormalDistribution(0, 1)
        assert d.support() == (None, None)
        with pytest.raises(UnboundedSupportError):
            d.bounded_support()

    def test_log_mgf(self):
        d = NormalDistribution(1, 2)
        assert d.log_mgf(0.5) == pytest.approx(0.5 + 0.125 * 4)

    def test_d_log_mgf(self):
        d = NormalDistribution(1, 2)
        assert d.d_log_mgf(0.5) == pytest.approx(1 + 0.5 * 4)

    def test_sample_mean(self):
        d = NormalDistribution(5, 1)
        rng = random.Random(7)
        xs = [d.sample(rng) for _ in range(5000)]
        assert sum(xs) / len(xs) == pytest.approx(5, abs=0.1)
