"""Tests for the Monte-Carlo PTS simulator."""

import pytest

from repro.errors import ModelError
from repro.polyhedra import var
from repro.pts import FAIL, TERM, PTSBuilder, bernoulli, simulate, simulate_violation_probability


def coin_flip_pts(p="1/2"):
    """One coin flip: fail with probability p, terminate otherwise."""
    b = PTSBuilder(["x"], init={"x": 0}, name="coin")
    b.transition("a", guard=[], forks=[(FAIL, p, {}), (TERM, f"{1 - eval_frac(p)}", {})])
    return b.build(init_location="a")


def eval_frac(p):
    from fractions import Fraction

    return Fraction(p)


def symmetric_walk(lo=-5, hi=5):
    """Random walk on integers; fail at hi, terminate at lo."""
    b = PTSBuilder(["x"], init={"x": 0}, name="walk")
    b.transition(
        "a",
        guard=[b.ge(var("x"), lo + 1), b.le(var("x"), hi - 1)],
        forks=[
            ("a", "1/2", {"x": var("x") + 1}),
            ("a", "1/2", {"x": var("x") - 1}),
        ],
    )
    b.goto("a", FAIL, guard=[b.ge(var("x"), hi)])
    b.goto("a", TERM, guard=[b.le(var("x"), lo)])
    return b.build(init_location="a")


class TestSimulate:
    def test_coin_flip_rate(self):
        pts = coin_flip_pts("1/4")
        result = simulate(pts, episodes=20_000, seed=3)
        assert result.violation_rate == pytest.approx(0.25, abs=0.02)
        assert result.violations + result.terminations == result.episodes
        assert result.censored == 0
        assert result.mean_steps == pytest.approx(1.0)

    def test_symmetric_walk_hits_half(self):
        # gambler's ruin from the midpoint: Pr[hit hi first] = 1/2
        result = simulate(symmetric_walk(), episodes=8_000, seed=5)
        assert result.violation_rate == pytest.approx(0.5, abs=0.03)

    def test_asymmetric_start(self):
        # start at 3 in [-5, 5]: Pr[hit 5 first] = (3+5)/10 = 0.8
        result = simulate(
            symmetric_walk(), episodes=8_000, seed=5, init_valuation={"x": 3.0}
        )
        assert result.violation_rate == pytest.approx(0.8, abs=0.03)

    def test_censoring(self):
        result = simulate(symmetric_walk(), episodes=500, max_steps=2, seed=0)
        assert result.censored > 0
        lo, hi = result.violation_interval()
        assert hi > result.violation_rate  # censored episodes widen the top

    def test_interval_contains_truth(self):
        result = simulate(coin_flip_pts("1/4"), episodes=5_000, seed=11)
        lo, hi = result.violation_interval()
        assert lo <= 0.25 <= hi

    def test_incomplete_pts_raises(self):
        b = PTSBuilder(["x"], init={"x": 5}, name="hole")
        b.goto("a", TERM, guard=[b.le(var("x"), 0)])
        pts = b.build(init_location="a")
        with pytest.raises(ModelError):
            simulate(pts, episodes=1)

    def test_determinism_with_seed(self):
        pts = symmetric_walk()
        a = simulate(pts, episodes=500, seed=9).violations
        b = simulate(pts, episodes=500, seed=9).violations
        assert a == b

    def test_convenience_wrapper(self):
        rate = simulate_violation_probability(coin_flip_pts("1/2"), episodes=2_000, seed=1)
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_sampling_variables_drive_updates(self):
        b = PTSBuilder(["x", "n"], init={"x": 0, "n": 0}, name="sampled")
        b.sampling("r", bernoulli("3/4"))
        b.transition(
            "a",
            guard=[b.le(var("n"), 99)],
            forks=[("a", 1, {"x": var("x") + var("r"), "n": var("n") + 1})],
        )
        b.goto("a", FAIL, guard=[b.ge(var("n"), 100), b.ge(var("x"), 76)])
        b.goto(
            "a", TERM, guard=[b.ge(var("n"), 100), b.le(var("x"), 75)]
        )
        pts = b.build(init_location="a")
        result = simulate(pts, episodes=2_000, seed=2)
        # X ~ Binomial(100, 3/4): Pr[X >= 76] ~ 0.446
        assert result.violation_rate == pytest.approx(0.446, abs=0.05)

    def test_empty_result_properties(self):
        from repro.pts.simulator import SimulationResult

        r = SimulationResult(0, 0, 0, 0, 0)
        assert r.violation_rate == 0.0
        assert r.termination_rate == 0.0
        assert r.mean_steps == 0.0
        assert r.violation_interval() == (0.0, 1.0)
