"""Tests for the unified analysis engine (task graph + schedulers + cache).

The load-bearing properties:

* **scheduler determinism** — serial and process-pool execution produce
  bit-identical certificates/bounds (the scheduler may only change
  wall-clock time, never results);
* **probe parity** — a Hoeffding synthesis whose Ser eps-probe LPs are
  fanned out as engine subtasks returns the same bracket (bit-identical
  bound, same LP count) as the serial ternary search;
* **cache correctness** — unchanged task hashes hit, changed parameters
  miss, and replayed results equal fresh ones;
* **worker clamping** — ``jobs=0``/oversized pools never spawn more
  processes than there are runnable tasks.
"""


import pytest

from repro.errors import EngineError
from repro.engine import (
    AnalysisEngine,
    AnalysisTask,
    CertificateResult,
    ProcessPoolScheduler,
    ProgramSpec,
    ResultCache,
    SerialScheduler,
    execute_task,
    make_scheduler,
)

RACE = """\
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

CHAIN = """\
const p = 0.01
i := 0
while i <= 9:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""

RACE_SPEC = ProgramSpec.from_source(RACE, name="race")
CHAIN_SPEC = ProgramSpec.from_source(CHAIN, name="chain")


def family_tasks():
    """One task per synthesis family, on small programs."""
    return [
        AnalysisTask.make("hoeffding", RACE_SPEC, task_id="hoeffding"),
        AnalysisTask.make("explinsyn", RACE_SPEC, task_id="explinsyn"),
        AnalysisTask.make("explowsyn", CHAIN_SPEC, task_id="explowsyn"),
        AnalysisTask.make(
            "polynomial_lower", CHAIN_SPEC, params={"degree": 2},
            task_id="polynomial_lower",
        ),
    ]


@pytest.mark.smoke
class TestTaskIdentity:
    def test_cache_key_deterministic(self):
        a = AnalysisTask.make("explowsyn", CHAIN_SPEC)
        b = AnalysisTask.make("explowsyn", ProgramSpec.from_source(CHAIN, name="chain"))
        assert a.cache_key == b.cache_key

    def test_cache_key_sensitive_to_content(self):
        base = AnalysisTask.make("explowsyn", CHAIN_SPEC)
        keys = {
            base.cache_key,
            AnalysisTask.make("explinsyn", CHAIN_SPEC).cache_key,
            AnalysisTask.make("explowsyn", RACE_SPEC).cache_key,
            AnalysisTask.make(
                "explowsyn", CHAIN_SPEC, params={"verify": False}
            ).cache_key,
        }
        assert len(keys) == 4

    def test_task_ids_default_to_key_prefix(self):
        task = AnalysisTask.make("explowsyn", CHAIN_SPEC)
        assert task.task_id == task.cache_key[:16]

    def test_tasks_are_picklable(self):
        import pickle

        task = AnalysisTask.make("hoeffding", RACE_SPEC, params={"eps_cap": 10.0})
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task and clone.cache_key == task.cache_key


@pytest.mark.smoke
class TestGraphValidation:
    def test_unknown_algorithm_is_an_error_result(self):
        result = execute_task(AnalysisTask.make("frobnicate", CHAIN_SPEC))
        assert not result.ok and result.error_type == "EngineError"

    def test_duplicate_ids_rejected(self):
        tasks = [
            AnalysisTask.make("explowsyn", CHAIN_SPEC, task_id="dup"),
            AnalysisTask.make("explinsyn", CHAIN_SPEC, task_id="dup"),
        ]
        with pytest.raises(EngineError, match="duplicate"):
            AnalysisEngine().run(tasks)

    def test_missing_dependency_rejected(self):
        task = AnalysisTask.make(
            "explowsyn", CHAIN_SPEC, task_id="t", depends_on=("ghost",)
        )
        with pytest.raises(EngineError, match="unknown"):
            AnalysisEngine().run([task])

    def test_cycle_rejected(self):
        tasks = [
            AnalysisTask.make("explowsyn", CHAIN_SPEC, task_id="a", depends_on=("b",)),
            AnalysisTask.make("explowsyn", CHAIN_SPEC, task_id="b", depends_on=("a",)),
        ]
        with pytest.raises(EngineError, match="cycle"):
            AnalysisEngine().run(tasks)

    def test_synthesis_failure_becomes_error_result(self):
        # polynomial lower bounds reject sampling-variable programs
        spec = ProgramSpec.from_source(
            "r ~ bernoulli(0.5)\nx := 0\nx := x + r\nassert false", name="sampling"
        )
        result = AnalysisEngine().run_inline(
            AnalysisTask.make("polynomial_lower", spec)
        )
        assert not result.ok and result.error_type == "ModelError"


class TestSchedulerDeterminism:
    def test_process_pool_matches_serial_across_families(self):
        tasks = family_tasks()
        serial = AnalysisEngine(SerialScheduler()).map(tasks)
        with ProcessPoolScheduler(jobs=2) as scheduler:
            pooled = AnalysisEngine(scheduler).map(tasks)
        for s, p in zip(serial, pooled):
            assert s.ok and p.ok
            assert s.log_bound == p.log_bound  # bit-identical
            assert s.state_table == p.state_table
            assert s.template_renders == p.template_renders

    def test_parallel_eps_probes_bit_identical_bracket(self):
        task = AnalysisTask.make("hoeffding", RACE_SPEC)
        serial = AnalysisEngine(SerialScheduler()).run_inline(task)
        with ProcessPoolScheduler(jobs=2) as scheduler:
            parallel = AnalysisEngine(scheduler).run_inline(task)
        assert serial.ok and parallel.ok
        assert parallel.log_bound == serial.log_bound
        assert parallel.details["reprsm_eps"] == serial.details["reprsm_eps"]
        assert parallel.details["reprsm_beta"] == serial.details["reprsm_beta"]
        # same search trajectory: same number of probe LPs, same eps*
        assert parallel.solver_info == serial.solver_info


@pytest.mark.smoke
class TestWorkerClamping:
    def test_pool_never_wider_than_batch(self):
        scheduler = ProcessPoolScheduler(jobs=5)
        try:
            assert scheduler.map(abs, [-1, 2]) == [1, 2]
            # workers fork on demand: a 2-task batch can never have forked
            # more than 2 processes, however generous --jobs is
            assert 1 <= scheduler.resolved_workers <= 2
        finally:
            scheduler.close()

    def test_jobs_zero_resolves_to_cpu_count(self):
        import os

        scheduler = ProcessPoolScheduler(jobs=0)
        assert scheduler.jobs == (os.cpu_count() or 1)
        scheduler.close()

    def test_single_item_runs_in_process(self):
        scheduler = ProcessPoolScheduler(jobs=4)
        try:
            assert scheduler.map(abs, [-7]) == [7]
            assert scheduler.resolved_workers == 0  # no pool was forked
        finally:
            scheduler.close()

    def test_make_scheduler(self):
        assert isinstance(make_scheduler(1), SerialScheduler)
        assert isinstance(make_scheduler(-1), SerialScheduler)  # legacy runner contract
        pool = make_scheduler(3)
        assert isinstance(pool, ProcessPoolScheduler) and pool.jobs == 3
        pool.close()
        assert isinstance(make_scheduler(0), ProcessPoolScheduler)


@pytest.mark.smoke
class TestResultCache:
    def test_unchanged_hash_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = AnalysisEngine(SerialScheduler(), cache=cache)
        task = AnalysisTask.make("explowsyn", CHAIN_SPEC)
        fresh = engine.run_inline(task)
        replay = engine.run_inline(task)
        assert fresh.ok and not fresh.cached
        assert replay.cached
        assert replay.log_bound == fresh.log_bound
        assert replay.template_renders == fresh.template_renders
        assert cache.hits == 1 and cache.stores == 1

    def test_changed_params_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = AnalysisEngine(SerialScheduler(), cache=cache)
        engine.run_inline(AnalysisTask.make("explowsyn", CHAIN_SPEC))
        other = engine.run_inline(
            AnalysisTask.make("explowsyn", CHAIN_SPEC, params={"verify": False})
        )
        assert not other.cached

    def test_error_results_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = AnalysisEngine(SerialScheduler(), cache=cache)
        spec = ProgramSpec.from_source(
            "r ~ bernoulli(0.5)\nx := 0\nx := x + r\nassert false", name="sampling"
        )
        task = AnalysisTask.make("polynomial_lower", spec)
        assert not engine.run_inline(task).ok
        assert not engine.run_inline(task).cached  # re-executed, not replayed

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = AnalysisTask.make("explowsyn", CHAIN_SPEC)
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / f"{task.cache_key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(task.cache_key) is None

    def test_degraded_warm_start_not_cached_under_warm_key(self, tmp_path):
        # a cold solve standing in for a failed warm-start producer must
        # not poison the warm-keyed cache entry
        from repro.experiments.table1 import row_tasks

        cache = ResultCache(tmp_path / "cache")
        engine = AnalysisEngine(SerialScheduler(), cache=cache)
        _, sec52 = row_tasks("Race", dict(x0=40, y0=0), "(40,0)", with_baseline=False)
        failed_dep = CertificateResult(algorithm="hoeffding", status="error")
        result = engine.run_inline(sec52, deps={sec52.depends_on[0]: failed_dep})
        assert result.ok and not result.details["warm_started"]
        assert not result.cache_ok
        assert cache.get(sec52.cache_key) is None  # nothing was stored


class TestTableHarnessOnEngine:
    def test_table1_dag_warm_starts_sec52(self):
        from repro.experiments.table1 import row_tasks

        tasks = row_tasks("Race", dict(x0=40, y0=0), "(40,0)", with_baseline=False)
        assert [t.algorithm for t in tasks] == ["hoeffding", "explinsyn"]
        assert tasks[1].depends_on == (tasks[0].task_id,)
        # the warm-start producer is fingerprinted into the consumer's key,
        # so warm- and cold-start explinsyn tasks never share a cache entry
        assert tasks[1].param("warm_start_key") == tasks[0].cache_key
        cold = AnalysisTask.make("explinsyn", tasks[1].program)
        assert cold.cache_key != tasks[1].cache_key
        results = AnalysisEngine().run(tasks)
        sec51, sec52 = (results[t.task_id] for t in tasks)
        assert sec51.ok and sec52.ok
        assert sec52.details["warm_started"]
        # completeness: the warm-started complete algorithm is at least as
        # tight as the Hoeffding certificate that seeded it
        assert sec52.log_bound <= sec51.log_bound + 1e-9

    def test_table2_serial_and_pooled_rows_identical(self):
        from repro.experiments.table2 import TABLE2_SPECS, format_table2, run_table2

        specs = [s for s in TABLE2_SPECS if s[0] == "M1DWalk"][:2]
        serial = run_table2(specs=specs)
        pooled = run_table2(specs=specs, jobs=2)
        assert [r.sec6_ln for r in serial] == [r.sec6_ln for r in pooled]
        for row in serial + pooled:
            row.sec6_seconds = 0.0  # wall time is the one legitimate difference
        assert format_table2(serial) == format_table2(pooled)

    def test_symbolic_serial_and_pooled_bytes_identical(self):
        from repro.experiments.symbolic_tables import (
            format_symbolic,
            run_symbolic_tables,
        )

        specs1 = [("Race", dict(x0=40, y0=0), "(40,0)")]
        specs2 = [("M1DWalk", dict(p="1e-4"), "p=1e-4")]
        serial = run_symbolic_tables(specs1=specs1, specs2=specs2)
        pooled = run_symbolic_tables(specs1=specs1, specs2=specs2, jobs=2)
        assert format_symbolic(serial) == format_symbolic(pooled)


@pytest.mark.smoke
class TestBenchRegressionGate:
    def test_best_recorded_sparse_seconds(self, tmp_path):
        import json

        from repro.experiments.fixpoint_bench import best_recorded_sparse_seconds

        path = tmp_path / "bench.json"
        assert best_recorded_sparse_seconds(path, "gambler", 100) is None
        path.write_text(
            json.dumps(
                {
                    "runs": [
                        {"results": [
                            {"program": "gambler", "max_states": 100,
                             "sparse_seconds": 0.5},
                            {"program": "gambler", "max_states": 200,
                             "sparse_seconds": 0.1},
                        ]},
                        {"results": [
                            {"program": "gambler", "max_states": 100,
                             "sparse_seconds": 0.3},
                        ]},
                    ]
                }
            )
        )
        # best across runs, matching on program AND state budget
        assert best_recorded_sparse_seconds(path, "gambler", 100) == 0.3
        assert best_recorded_sparse_seconds(path, "gambler", 200) == 0.1
        assert best_recorded_sparse_seconds(path, "other", 100) is None
        path.write_text("not json")
        assert best_recorded_sparse_seconds(path, "gambler", 100) is None
