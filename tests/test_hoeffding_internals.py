"""Targeted tests for HoeffdingSynthesis internals (Section 5.1 / App. C.2)."""


import pytest

from repro.errors import UnboundedSupportError
from repro.lang import compile_source
from repro.core import azuma_baseline, hoeffding_synthesis
from repro.core.hoeffding import _support_box
from repro.programs import get_benchmark


class TestSupportBox:
    def test_bounded_supports(self):
        src = "r ~ uniform(-1, 2)\ns ~ bernoulli(0.5)\nx := 0\nx := x + r + s\nassert x <= 5"
        pts = compile_source(src, name="b").pts
        box = _support_box(pts)
        assert box.contains({"r": 0, "s": 1})
        assert not box.contains({"r": 3, "s": 0})

    def test_unbounded_support_rejected(self):
        src = "r ~ normal(0, 1)\nx := 0\nx := x + r\nassert x <= 5"
        pts = compile_source(src, name="n").pts
        with pytest.raises(UnboundedSupportError):
            hoeffding_synthesis(pts)


class TestTrivialPath:
    def test_trivial_certificate_when_no_reprsm_helps(self):
        # fair coin, fail with prob 1/2: no repulsing drift exists, so the
        # only sound RepRSM bound is the trivial 1
        src = "x := 0\nif prob(0.5):\n    x := 1\nassert x <= 0"
        pts = compile_source(src, name="coin").pts
        cert = hoeffding_synthesis(pts)
        assert cert.bound >= 0.5  # must stay above the true probability
        assert cert.reprsm is not None

    def test_zero_bound_for_unreachable_failure(self):
        src = "x := 5\nassert x >= 1"
        pts = compile_source(src, name="safe").pts
        cert = hoeffding_synthesis(pts)
        assert cert.bound == 0.0
        assert "unreachable" in cert.solver_info


class TestRemark2Ordering:
    @pytest.mark.parametrize(
        "name,kwargs",
        [("Race", dict(x0=40, y0=0)), ("1DWalk", dict(x0=10))],
    )
    def test_hoeffding_at_least_twice_azuma_exponent(self, name, kwargs):
        """Remark 2: with the same eta, the Hoeffding exponent doubles the
        Azuma one; with independently optimized eta the ordering persists."""
        inst = get_benchmark(name, **kwargs)
        hoeff = hoeffding_synthesis(inst.pts, inst.invariants)
        azuma = azuma_baseline(inst.pts, inst.invariants)
        assert hoeff.log_bound <= azuma.log_bound + 1e-9

    def test_azuma_uses_factor_four(self):
        inst = get_benchmark("Race", x0=40, y0=0)
        azuma = azuma_baseline(inst.pts, inst.invariants)
        data = azuma.reprsm
        eta_init = data.eta.exponent(
            inst.pts.init_location,
            {k: float(v) for k, v in inst.pts.init_valuation.items()},
        )
        assert azuma.log_bound == pytest.approx(
            min(4.0 * data.eps * eta_init, 0.0), rel=1e-6
        )

    def test_hoeffding_uses_factor_eight(self):
        inst = get_benchmark("Race", x0=40, y0=0)
        cert = hoeffding_synthesis(inst.pts, inst.invariants)
        data = cert.reprsm
        eta_init = data.eta.exponent(
            inst.pts.init_location,
            {k: float(v) for k, v in inst.pts.init_valuation.items()},
        )
        assert cert.log_bound == pytest.approx(
            min(8.0 * data.eps * eta_init, 0.0), rel=1e-6
        )


class TestSamplingVariablesInC4:
    def test_robot_with_noise_synthesizes(self):
        inst = get_benchmark("Robot", deviation="1.8")
        cert = hoeffding_synthesis(inst.pts, inst.invariants)
        # the paper's Section 5.1 column reports 1.66e-1; any sound
        # non-trivial-or-trivial bound is acceptable here, but it must
        # dominate the true probability (~2e-6 by simulation)
        assert cert.bound >= 1e-6
