"""The differential-fuzzing farm: grid, oracles, shrinking, archiving.

The seeded smoke slice (`-m fuzz_smoke`) is the PR-blocking tier; the
nightly bench workflow runs the open-ended budgeted farm on fresh seeds
(``tools/run_fuzz_farm.py``).
"""

import json

import pytest

from repro.fuzz import (
    GENERATOR_VERSION,
    check_source,
    cross_check_cells,
    generate,
    run_farm,
    shrink_source,
)
from repro.cli import main

pytestmark = pytest.mark.fuzz_smoke


def _ok_cell(explore, solver, lower, upper, states=10, truncated=False):
    return {
        "explore": explore,
        "solver": solver,
        "expected": "ok",
        "ok": True,
        "error": "",
        "error_type": "",
        "lower": lower,
        "upper": upper,
        "states": states,
        "iterations": 5,
        "truncated": truncated,
        "certified": True,
        "explorer": explore,
    }


class TestCrossCheck:
    """Unit drills: every oracle must fire on a synthetic violation."""

    def test_clean_cells_pass(self):
        cells = [
            _ok_cell("fraction", "sweep", 0.25, 0.25),
            _ok_cell("int64", "sweep", 0.25, 0.25),
        ]
        assert cross_check_cells(cells) == []

    def test_bracket_overlap_violation_detected(self):
        cells = [
            _ok_cell("fraction", "sweep", 0.2, 0.21),
            _ok_cell("int64", "sweep", 0.4, 0.41),
        ]
        kinds = [k for k, _ in cross_check_cells(cells)]
        assert "bracket-overlap" in kinds

    def test_explorer_divergence_detected(self):
        cells = [
            _ok_cell("fraction", "sweep", 0.25, 0.25, states=10),
            _ok_cell("int64", "sweep", 0.25, 0.25, states=11),
        ]
        kinds = [k for k, _ in cross_check_cells(cells)]
        assert "explorer-divergence" in kinds

    def test_outward_escape_detected(self):
        cells = [
            _ok_cell("fraction", "sweep", 0.25, 0.25),
            _ok_cell("fraction", "anderson", 0.2, 0.3),
        ]
        kinds = [k for k, _ in cross_check_cells(cells)]
        assert "outward-escape" in kinds

    def test_admission_mismatch_detected(self):
        ran_anyway = dict(_ok_cell("scaled", "sweep", 0.25, 0.25), expected="refuse")
        kinds = [
            k
            for k, _ in cross_check_cells(
                [ran_anyway], admission_reason="not lattice-admissible"
            )
        ]
        assert "admission-mismatch" in kinds

    def test_refusal_with_wrong_error_type_detected(self):
        cell = {
            "explore": "int64",
            "solver": "sweep",
            "expected": "refuse",
            "ok": False,
            "error": "boom",
            "error_type": "ValueError",
        }
        kinds = [k for k, _ in cross_check_cells([cell])]
        assert "task-error" in kinds

    def test_runtime_overflow_is_not_a_discrepancy(self):
        cell = {
            "explore": "int64",
            "solver": "sweep",
            "expected": "ok",
            "ok": False,
            "error": "frontier arithmetic overflowed int64",
            "error_type": "ModelError",
        }
        assert cross_check_cells([cell]) == []
        assert cell.get("overflow_refusal") is True

    def test_injection_corrupts_the_baseline(self):
        cells = [_ok_cell("fraction", "sweep", 0.25, 0.25)]
        kinds = [k for k, _ in cross_check_cells(cells, inject=True)]
        assert "bracket-overlap" in kinds
        assert cells[0]["injected"] is True


class TestCheckSource:
    def test_clean_program_has_no_findings(self):
        program = generate("inventory", 1)
        assert (
            check_source(program.source, program.integer_mode, max_states=2048) == []
        )

    def test_compile_error_is_a_finding(self):
        kinds = [k for k, _ in check_source("x := (", True, max_states=64)]
        assert kinds == ["compile-error"]

    def test_injection_is_a_finding(self):
        program = generate("birth-death", 1)
        kinds = [
            k
            for k, _ in check_source(
                program.source, program.integer_mode, max_states=2048, inject=True
            )
        ]
        assert "bracket-overlap" in kinds


class TestShrinker:
    def test_shrinks_to_local_minimum(self):
        source = "a := 5\nb := 7\nwhile a >= 1:\n    a := a - 1\nassert b <= 9"
        # predicate: program mentions b in an assert — everything else
        # (the loop, the literals) must shrink away
        shrunk = shrink_source(source, lambda s: "assert b" in s)
        assert shrunk is not None
        assert len(shrunk.split("\n")) < len(source.split("\n"))
        assert "while" not in shrunk
        assert "assert b" in shrunk

    def test_returns_none_when_predicate_never_held(self):
        assert shrink_source("a := 1", lambda s: False) is None

    def test_predicate_exceptions_reject_the_candidate(self):
        # a predicate that crashes on candidates missing line 1 still
        # shrinks literals on the surviving text instead of crashing
        def predicate(s):
            if "a := " not in s:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_source("a := 9\nb := 8", predicate)
        assert shrunk is not None and "a := " in shrunk


class TestFarm:
    def test_smoke_farm_is_clean_and_archives_the_corpus(self, tmp_path):
        report = run_farm(
            seed=5, count=4, jobs=1, max_states=2048, out_dir=tmp_path
        )
        assert report.ok, "\n".join(report.render())
        assert len(report.verdicts) == 4
        assert {v.program.family for v in report.verdicts} == {
            "birth-death",
            "gridworld",
            "inventory",
            "mixed-lattice",
        }
        # every successful run's certificate was verified by the checker
        for verdict in report.verdicts:
            for cell in verdict.cells:
                if cell["ok"]:
                    assert cell.get("cert_ok") is True, cell
        # corpus entries carry the replay triple
        entries = sorted((tmp_path / "corpus").glob("*.json"))
        assert len(entries) == 4
        for path in entries:
            entry = json.loads(path.read_text())
            assert entry["generator_version"] == GENERATOR_VERSION
            assert isinstance(entry["seed"], int)
            assert entry["farm"]["farm_seed"] == 5

    def test_forced_modes_follow_the_admission_differential(self):
        # farm seed 2 draws the over-cap mixed-lattice variant: the
        # checker predicts refusal of both forced modes and the farm
        # confirms it run by run
        report = run_farm(
            seed=2, count=1, families=("mixed-lattice",), jobs=1, max_states=2048
        )
        assert report.ok, "\n".join(report.render())
        verdict = report.verdicts[0]
        assert verdict.program.params["over_cap"] is True
        assert verdict.admission == "none"
        assert verdict.refusals_confirmed == 2  # int64 + scaled

    def test_scaled_admission_with_near_cap_multiplier(self):
        # farm seed 9 draws den=999983 — admitted scaled, so only the
        # forced int64 mode must refuse
        report = run_farm(
            seed=9, count=1, families=("mixed-lattice",), jobs=1, max_states=2048
        )
        assert report.ok, "\n".join(report.render())
        verdict = report.verdicts[0]
        assert verdict.program.params["den"] == 999_983
        assert verdict.admission == "scaled"
        assert verdict.refusals_confirmed == 1  # int64 only

    def test_injected_discrepancy_is_shrunk_and_archived(self, tmp_path):
        report = run_farm(
            seed=2,
            count=1,
            families=("birth-death",),
            jobs=1,
            max_states=2048,
            out_dir=tmp_path,
            inject="*",
        )
        assert not report.ok
        kinds = {d.kind for d in report.discrepancies}
        assert "bracket-overlap" in kinds
        disc = next(d for d in report.discrepancies if d.kind == "bracket-overlap")
        assert disc.injected
        # shrunk to a minimal reproducer strictly smaller than the original
        program = report.verdicts[0].program
        assert disc.shrunk_source is not None
        assert len(disc.shrunk_source.split("\n")) < len(program.source.split("\n"))
        # and the reproducer still reproduces under the same re-check
        assert any(
            k == "bracket-overlap"
            for k, _ in check_source(
                disc.shrunk_source,
                program.integer_mode,
                max_states=2048,
                inject=True,
            )
        )
        # failure artifact carries the replay triple and the reproducer
        artifacts = list((tmp_path / "failures").glob("*bracket-overlap*.json"))
        assert artifacts
        entry = json.loads(artifacts[0].read_text())
        assert entry["seed"] == program.seed
        assert entry["generator_version"] == GENERATOR_VERSION
        assert entry["discrepancy"]["injected"] is True
        assert entry["discrepancy"]["shrunk_source"] == disc.shrunk_source

    def test_duplicate_kinds_collapse_to_one_finding(self):
        report = run_farm(
            seed=2,
            count=1,
            families=("birth-death",),
            jobs=1,
            max_states=2048,
            inject="*",
            shrink=False,
        )
        kinds = [d.kind for d in report.discrepancies]
        assert len(kinds) == len(set(kinds))


class TestCLI:
    def test_fuzz_subcommand_clean_run(self, tmp_path, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "3",
                "--count",
                "2",
                "--families",
                "birth-death,inventory",
                "--max-states",
                "2048",
                "--out",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "discrepancies : 0" in out
        assert "generator=fuzz-gen" in out

    def test_fuzz_subcommand_exit_1_on_discrepancy(self, tmp_path, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "3",
                "--count",
                "1",
                "--families",
                "inventory",
                "--max-states",
                "2048",
                "--inject",
                "*",
                "--no-shrink",
                "--out",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "[injected]" in out

    def test_fuzz_subcommand_rejects_unknown_family(self, capsys):
        rc = main(["fuzz", "--families", "bogus", "--count", "1"])
        assert rc == 1
        assert "unknown families" in capsys.readouterr().err


class TestCertificateOracle:
    """A corrupted certificate from a fuzzed run must be rejected."""

    def _emit(self, tmp_path):
        program = generate("inventory", 4)
        prog_file = tmp_path / "fuzzed.prob"
        prog_file.write_text(program.source + "\n")
        cert_file = tmp_path / "fuzzed.cert.json"
        rc = main(
            [
                "exact",
                str(prog_file),
                "--max-states",
                "2048",
                "--certificate",
                str(cert_file),
            ]
        )
        assert rc == 0
        return prog_file, cert_file

    def test_intact_certificate_verifies(self, tmp_path, capsys):
        _, cert_file = self._emit(tmp_path)
        assert main(["verify-certificate", str(cert_file)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_corrupted_certificate_exits_1(self, tmp_path, capsys):
        _, cert_file = self._emit(tmp_path)
        raw = bytearray(cert_file.read_bytes())
        raw[len(raw) // 2] ^= 0x20
        cert_file.write_bytes(bytes(raw))
        assert main(["verify-certificate", str(cert_file)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_certificate_exits_2(self, tmp_path, capsys):
        rc = main(
            [
                "verify-certificate",
                str(tmp_path / "nope.cert.json"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 2
        assert "neither a certificate file nor" in capsys.readouterr().err
