"""Tests for the polynomial-exponent extension (Handelman, Remarks 3/5)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.numeric.lp import LinearProgram
from repro.polyhedra import Polyhedron
from repro.polyhedra.linexpr import LinExpr, var
from repro.core.polynomial import (
    Polynomial,
    handelman_constraints,
    polynomial_hoeffding_synthesis,
)


class TestPolynomialArithmetic:
    def test_constant_and_variable(self):
        p = Polynomial.variable("x") + Polynomial.constant(3)
        assert p.degree() == 1
        assert p.evaluate({"x": 2.0}, {}) == 5.0

    def test_product_degree(self):
        x = Polynomial.variable("x")
        assert (x * x * x).degree() == 3

    def test_multiplication_distributes(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = (x + y) * (x - y)
        assert p.evaluate({"x": 3.0, "y": 2.0}, {}) == pytest.approx(5.0)

    def test_zero_coefficients_dropped(self):
        x = Polynomial.variable("x")
        p = x - x
        assert p.terms == {}
        assert p.degree() == 0

    def test_unknown_times_unknown_rejected(self):
        a = Polynomial({(): LinExpr.variable("a")})
        with pytest.raises(ModelError):
            _ = a * a

    def test_from_linexpr(self):
        p = Polynomial.from_linexpr(var("x") * 2 + 1)
        assert p.evaluate({"x": 3.0}, {}) == 7.0

    def test_substitute_affine(self):
        # (x + 1)^2 under x -> 2y equals 4y^2 + 4y + 1
        x = Polynomial.variable("x")
        p = (x + Polynomial.constant(1)) * (x + Polynomial.constant(1))
        q = p.substitute_affine({"x": var("y") * 2})
        assert q.evaluate({"y": 3.0}, {}) == pytest.approx(49.0)
        assert q.degree() == 2

    def test_unknown_coefficients_evaluate(self):
        p = Polynomial({(("x", 1),): LinExpr.variable("a")})
        assert p.evaluate({"x": 4.0}, {"a": 0.5}) == 2.0

    @given(
        st.integers(min_value=-3, max_value=3),
        st.integers(min_value=-3, max_value=3),
    )
    def test_add_commutes_pointwise(self, vx, vy):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x * x + y.scale(2)
        q = y * y - x
        val = {"x": float(vx), "y": float(vy)}
        assert (p + q).evaluate(val, {}) == pytest.approx((q + p).evaluate(val, {}))


class TestHandelman:
    def test_true_positivity_feasible(self):
        # x (10 - x) >= 0 on [0, 10]
        x = Polynomial.variable("x")
        lp = LinearProgram()
        handelman_constraints(
            x.scale(10) - x * x, Polyhedron.from_box({"x": (0, 10)}), lp, 2, "t"
        )
        assert lp.feasible()

    def test_false_positivity_infeasible(self):
        lp = LinearProgram()
        handelman_constraints(
            Polynomial.variable("x") - Polynomial.constant(5),
            Polyhedron.from_box({"x": (0, 10)}),
            lp,
            3,
            "t",
        )
        assert not lp.feasible()

    def test_unbounded_premise_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ModelError):
            handelman_constraints(
                Polynomial.variable("x"),
                Polyhedron.from_box({"x": (0, None)}),
                lp,
                2,
                "t",
            )

    def test_two_dimensional(self):
        # (x + y) >= 0 on [0,1]^2
        lp = LinearProgram()
        target = Polynomial.variable("x") + Polynomial.variable("y")
        handelman_constraints(target, Polyhedron.from_box({"x": (0, 1), "y": (0, 1)}), lp, 2, "t")
        assert lp.feasible()

    def test_degree_budget_matters(self):
        # x^2 - x + 0.3 > 0 on [0,1] (positivity margin 0.05): Handelman
        # certificates exist from degree 6 up but not below — the degree
        # budget is a real knob, growing as the margin shrinks
        x = Polynomial.variable("x")
        target = x * x - x + Polynomial.constant(Fraction(30, 100))
        box = Polyhedron.from_box({"x": (0, 1)})
        lp_low = LinearProgram()
        handelman_constraints(target, box, lp_low, 3, "lo")
        assert not lp_low.feasible()
        lp_high = LinearProgram()
        handelman_constraints(target, box, lp_high, 6, "hi")
        assert lp_high.feasible()


class TestPolynomialSynthesis:
    def test_race_matches_affine(self):
        from repro.core import hoeffding_synthesis
        from repro.programs import get_benchmark

        inst = get_benchmark("Race", x0=40, y0=0)
        poly = polynomial_hoeffding_synthesis(
            inst.pts, inst.invariants, degree=2, verify=True
        )
        affine = hoeffding_synthesis(inst.pts, inst.invariants)
        # degree-2 templates are a superset: at least as tight (small slack
        # allowed for the coarser eps search)
        assert poly.log_bound <= affine.log_bound + 0.5
        assert poly.method == "polynomial-hoeffding"
        assert "Handelman" in poly.solver_info

    def test_sampling_variables_rejected(self):
        from repro.lang import compile_source

        src = "r ~ bernoulli(0.5)\nx := 0\nn := 0\nwhile n <= 9:\n  x, n := x + r, n + 1\nassert x <= 8"
        pts = compile_source(src, name="acc").pts
        with pytest.raises(ModelError):
            polynomial_hoeffding_synthesis(pts)

    def test_polynomial_templates_recorded(self):
        from repro.programs import get_benchmark

        inst = get_benchmark("Race", x0=40, y0=0)
        cert = polynomial_hoeffding_synthesis(inst.pts, inst.invariants, degree=2)
        assert hasattr(cert, "polynomial_templates")
        head = inst.pts.init_location
        assert cert.polynomial_templates[head].degree() <= 2
