"""Tests for the surface-language parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.polyhedra.linexpr import LinExpr, var
from repro.pts.distributions import (
    DiscreteDistribution,
    NormalDistribution,
    UniformDistribution,
)


class TestAssignments:
    def test_simple(self):
        prog = parse_program("x := 40")
        (stmt,) = prog.body
        assert isinstance(stmt, ast.Assign)
        assert stmt.targets == ("x",)
        assert stmt.values == (LinExpr.constant(40),)

    def test_tuple_assignment(self):
        prog = parse_program("x, y := x + 1, y + 2")
        (stmt,) = prog.body
        assert stmt.targets == ("x", "y")
        assert stmt.values[0] == var("x") + 1

    def test_plain_equals_allowed(self):
        (stmt,) = parse_program("x = 3").body
        assert isinstance(stmt, ast.Assign)

    def test_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_program("x, y := 1")

    def test_duplicate_target(self):
        with pytest.raises(ParseError):
            parse_program("x, x := 1, 2")

    def test_semicolon_separated_statements_require_block(self):
        prog = parse_program("while x <= 1: x := x + 1; y := 2")
        (loop,) = prog.body
        assert len(loop.body) == 2


class TestExpressions:
    def test_affine_arithmetic(self):
        (stmt,) = parse_program("x := 2 * y + 3 - z / 2").body
        expected = var("y") * 2 + 3 - var("z") / 2
        assert stmt.values[0] == expected

    def test_constant_folding(self):
        (stmt,) = parse_program("x := (1 + 2) * 3 / 9").body
        assert stmt.values[0] == LinExpr.constant(1)

    def test_decimal_is_exact(self):
        (stmt,) = parse_program("x := 0.1").body
        assert stmt.values[0].const == Fraction(1, 10)

    def test_scientific_notation(self):
        (stmt,) = parse_program("x := 1e-7").body
        assert stmt.values[0].const == Fraction(1, 10_000_000)

    def test_nonaffine_product_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := y * z")

    def test_division_by_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := 1 / y")

    def test_division_by_zero_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := y / 0")

    def test_unary_minus(self):
        (stmt,) = parse_program("x := -y + - 2").body
        assert stmt.values[0] == -var("y") - 2


class TestConstants:
    def test_const_substitution(self):
        prog = parse_program("const p = 1e-7\nx := p * 2")
        stmt = prog.body[-1]
        assert stmt.values[0] == LinExpr.constant(Fraction(2, 10_000_000))
        assert prog.constants["p"] == Fraction(1, 10_000_000)

    def test_const_in_probability(self):
        prog = parse_program(
            "const p = 0.25\nwhile x <= 1:\n  if prob(1 - p):\n    x := x + 1\n  else:\n    exit"
        )
        loop = prog.body[-1]
        branch = loop.body[0]
        assert branch.prob == Fraction(3, 4)


class TestControlFlow:
    def test_while_with_invariant(self):
        prog = parse_program("while x <= 99 invariant x <= 100:\n  x := x + 1")
        (loop,) = prog.body
        assert isinstance(loop, ast.While)
        assert loop.invariant is not None

    def test_prob_if(self):
        src = "if prob(0.5):\n  x := 1\nelse:\n  x := 2"
        (branch,) = parse_program(src).body
        assert isinstance(branch, ast.ProbIf)
        assert branch.prob == Fraction(1, 2)
        assert len(branch.then) == 1 and len(branch.orelse) == 1

    def test_prob_if_without_else(self):
        (branch,) = parse_program("if prob(0.5):\n  x := 1").body
        assert branch.orelse == []

    def test_deterministic_if(self):
        (branch,) = parse_program("if x <= 0:\n  y := 1\nelse:\n  y := 2").body
        assert isinstance(branch, ast.If)

    def test_switch(self):
        src = "switch:\n  prob(0.75): x := x + 1\n  prob(0.25): x := x - 1"
        (sw,) = parse_program(src).body
        assert isinstance(sw, ast.Switch)
        assert [p for p, _ in sw.arms] == [Fraction(3, 4), Fraction(1, 4)]

    def test_switch_probabilities_checked(self):
        src = "switch:\n  prob(0.75): x := x + 1\n  prob(0.75): x := x - 1"
        with pytest.raises(ParseError):
            parse_program(src)

    def test_empty_switch_rejected(self):
        with pytest.raises(ParseError):
            parse_program("switch:\n  x := 1")

    def test_assert_with_parens(self):
        (a,) = parse_program("assert(x >= 100)").body
        assert isinstance(a, ast.Assert)

    def test_assert_false(self):
        (a,) = parse_program("assert false").body
        assert a.cond == ast.BoolConst(False)

    def test_exit_skip(self):
        prog = parse_program("skip\nexit")
        assert isinstance(prog.body[0], ast.Skip)
        assert isinstance(prog.body[1], ast.Exit)

    def test_nested_blocks(self):
        src = (
            "while x <= 9:\n"
            "  if prob(0.5):\n"
            "    while y <= 3:\n"
            "      y := y + 1\n"
            "  else:\n"
            "    x := x + 1\n"
        )
        (outer,) = parse_program(src).body
        inner = outer.body[0].then[0]
        assert isinstance(inner, ast.While)


class TestBooleans:
    def test_comparison_operators(self):
        cond = parse_program("assert x <= 1").body[0].cond
        assert isinstance(cond, ast.Atom) and not cond.strict
        cond = parse_program("assert x < 1").body[0].cond
        assert cond.strict
        cond = parse_program("assert x >= 1").body[0].cond
        assert isinstance(cond, ast.Atom)
        cond = parse_program("assert x == 1").body[0].cond
        assert isinstance(cond, ast.And)
        cond = parse_program("assert x != 1").body[0].cond
        assert isinstance(cond, ast.Or)

    def test_precedence_and_over_or(self):
        cond = parse_program("assert a <= 1 or b <= 2 and c <= 3").body[0].cond
        assert isinstance(cond, ast.Or)
        assert isinstance(cond.operands[1], ast.And)

    def test_not(self):
        cond = parse_program("assert not x <= 1").body[0].cond
        assert isinstance(cond, ast.Not)

    def test_parenthesized_bool(self):
        cond = parse_program("assert (a <= 1 or b <= 2) and c <= 3").body[0].cond
        assert isinstance(cond, ast.And)
        assert isinstance(cond.operands[0], ast.Or)

    def test_parenthesized_arithmetic_in_comparison(self):
        cond = parse_program("assert (x + 1) * 2 <= 4").body[0].cond
        assert isinstance(cond, ast.Atom)
        assert cond.expr == var("x") * 2 - 2

    def test_negate_atom_roundtrip(self):
        atom = ast.Atom(var("x") - 1)
        assert atom.negate().negate() == atom

    def test_evaluate_bool(self):
        cond = parse_program("assert x <= 1 and y >= 2").body[0].cond
        assert ast.evaluate_bool(cond, {"x": 1, "y": 2})
        assert not ast.evaluate_bool(cond, {"x": 2, "y": 2})

    def test_strictness_in_evaluation(self):
        cond = parse_program("assert x < 1").body[0].cond
        assert not ast.evaluate_bool(cond, {"x": 1})
        assert ast.evaluate_bool(cond, {"x": 0})


class TestSamplingDecls:
    def test_uniform(self):
        (decl,) = parse_program("r ~ uniform(-1, 1)").body
        assert isinstance(decl, ast.SampleDecl)
        assert isinstance(decl.distribution, UniformDistribution)

    def test_discrete(self):
        (decl,) = parse_program("r ~ discrete((0.5, -1), (0.5, 1))").body
        assert isinstance(decl.distribution, DiscreteDistribution)
        assert decl.distribution.mean() == 0

    def test_bernoulli(self):
        (decl,) = parse_program("r ~ bernoulli(0.25)").body
        assert decl.distribution.mean() == Fraction(1, 4)

    def test_normal(self):
        (decl,) = parse_program("r ~ normal(0, 2)").body
        assert isinstance(decl.distribution, NormalDistribution)

    def test_program_variables_exclude_samples(self):
        prog = parse_program("r ~ bernoulli(0.5)\nx := x + r")
        assert prog.variables() == ("x",)
        assert [d.name for d in prog.sampling_declarations()] == ["r"]


class TestErrors:
    def test_unexpected_keyword(self):
        with pytest.raises(ParseError):
            parse_program("else:\n  x := 1")

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse_program(":= 1")

    def test_error_carries_position(self):
        try:
            parse_program("x :=\n")
        except ParseError as e:
            assert e.line == 1
        else:
            pytest.fail("expected ParseError")
