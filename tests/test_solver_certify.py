"""Soundness tests of the solve-then-certify oracle layer.

The oracles (:mod:`repro.core.solvers`) are *untrusted* candidate
producers; the only trusted code is the monotone certification sweep that
decides adoption.  These tests attack that boundary directly:

* wrong, non-bracketing and NaN/inf candidates must be rejected and leave
  the bracket exactly where the sweeps put it (fallback is bitwise
  equivalent to ``solver="sweep"``),
* the contraction witness must gate the lower side (a post-fixpoint
  without ``rho(A) < 1`` proves nothing about ``lfp``),
* every oracle's adopted bracket on the Table 1 workload shapes must
  overlap the pure-sweep bracket and never escape it outward beyond the
  certification slack budget.
"""

import numpy as np
import pytest

from repro.lang import compile_source
from repro.core import solvers
from repro.core.fixpoint import build_sparse_model, iterate_model, value_iteration
from repro.core.solvers import (
    OracleFailure,
    certify_bracket,
    contraction_witness_ok,
    run_oracle,
)

from test_fixpoint_equivalence import PROGRAMS

#: slow-mixing fair walk (interior 1..119): the regime the oracles target —
#: thousands of sweeps under solver="sweep", one certified solve otherwise
SLOW_GAMBLER = """
x := 30
while x >= 1 and x <= 119:
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 1
assert x <= 0
"""

#: outward-escape tolerance per oracle: direct adopts at near machine
#: precision; sor/anderson nudge along the expected-visits witness whose
#: magnitude inflates the slack (~eps * max(w))
ORACLE_TOL = {"direct": 1e-9, "sor": 1e-6, "anderson": 1e-6}


def _three_state_chain():
    """``x -> x+1`` w.p. 1/2, absorbed left into fail, right into success:
    a 3-interior-state fair walk with known exact fixpoint."""
    matrix = np.array(
        [
            [0.0, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.0],
        ]
    )
    b = np.column_stack([np.array([0.5, 0.0, 0.0]), np.array([0.5, 0.0, 0.0])])
    # exact lfp of both columns: ruin probabilities (3/4, 1/2, 1/4)
    exact = np.linalg.solve(np.eye(3) - matrix, b[:, 0])
    witness = np.linalg.solve(np.eye(3) - matrix, np.ones(3))
    return matrix, b, exact, witness


class TestCertifyBracket:
    def setup_method(self):
        self.matrix, self.b, self.exact, self.witness = _three_state_chain()
        # a mid-iteration valid bracket: lower below lfp, upper above
        self.x = np.column_stack([self.exact - 0.2, self.exact + 0.2]).clip(0, 1)

    def _certify(self, candidate, residual=1e-15, allow_lower=True, witness=None):
        return certify_bracket(
            self.matrix,
            self.b,
            self.x,
            candidate,
            self.witness if witness is None else witness,
            residual,
            allow_lower,
        )

    def test_exact_candidate_adopted_both_sides(self):
        candidate = np.column_stack([self.exact, self.exact])
        x, ok_lower, ok_upper, sweeps = self._certify(candidate)
        assert ok_lower and ok_upper
        assert sweeps >= 1
        # adopted bracket is tight around the exact fixpoint and ordered
        assert (np.abs(x - self.exact[:, None]) < 1e-6).all()
        assert (x[:, 0] <= x[:, 1]).all()
        # and sound: lower never above lfp, upper never below
        assert (x[:, 0] <= self.exact + 1e-15).all()
        assert (x[:, 1] >= self.exact - 1e-15).all()

    def test_wrong_candidate_rejected_bracket_unchanged(self):
        # claims a lower bound *above* the fixpoint: every slack rung must
        # fail the post-fixpoint check and the bracket must not move
        candidate = np.column_stack([self.exact + 0.1, self.exact - 0.1])
        x, ok_lower, ok_upper, _ = self._certify(candidate, residual=0.1)
        assert not ok_lower and not ok_upper
        assert (x == self.x).all()

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_candidate_rejected(self, bad):
        candidate = np.column_stack([self.exact, self.exact])
        candidate[1, 0] = bad
        candidate[1, 1] = bad
        x, ok_lower, ok_upper, _ = self._certify(candidate)
        assert not ok_lower and not ok_upper
        assert (x == self.x).all()

    def test_lower_side_gated_by_witness_flag(self):
        candidate = np.column_stack([self.exact, self.exact])
        x, ok_lower, ok_upper, _ = self._certify(candidate, allow_lower=False)
        assert not ok_lower and ok_upper
        # the lower column stayed exactly where the sweeps left it
        assert (x[:, 0] == self.x[:, 0]).all()

    def test_nonfinite_witness_falls_back_to_unit_nudge(self):
        candidate = np.column_stack([self.exact, self.exact])
        bad_witness = np.array([1.0, np.inf, 1.0])
        x, ok_lower, ok_upper, _ = self._certify(candidate, witness=bad_witness)
        # certification still works (ones-direction nudge), it is just
        # allowed to be less tight
        assert ok_upper
        assert (x[:, 1] >= self.exact - 1e-15).all()

    def test_vacuous_clipped_candidate_reads_as_rejection(self):
        # a garbage candidate far outside [0, 1] clips to the lattice
        # bottom/top, which verify trivially — adoption must require
        # strict improvement and therefore refuse it
        candidate = np.column_stack([self.exact - 50.0, self.exact + 50.0])
        x, ok_lower, ok_upper, _ = self._certify(candidate, residual=50.0)
        assert not ok_lower and not ok_upper
        assert (x == self.x).all()


class TestContractionWitness:
    def test_expected_visits_vector_certifies(self):
        matrix, _, _, witness = _three_state_chain()
        assert contraction_witness_ok(matrix, witness)

    def test_badly_wrong_but_margined_witness_still_certifies(self):
        # the exact residual is 1, the required margin 1/2: a witness off
        # by a third of its magnitude keeps certifying (by design)
        matrix, _, _, witness = _three_state_chain()
        assert contraction_witness_ok(matrix, witness * (2.0 / 3.0) + 0.2)

    def test_nonfinite_or_marginless_witness_rejected(self):
        matrix, _, _, witness = _three_state_chain()
        assert not contraction_witness_ok(matrix, np.array([1.0, np.nan, 1.0]))
        assert not contraction_witness_ok(matrix, np.zeros(3))
        # stochastic row-sum-1 matrix: no finite witness exists at all
        stochastic = np.full((3, 3), 1.0 / 3.0)
        assert not contraction_witness_ok(stochastic, witness)


class TestOracles:
    def test_direct_solves_to_machine_precision(self):
        matrix, b, exact, _ = _three_state_chain()
        out = run_oracle(matrix, b, np.zeros_like(b), "direct", 3, 1e-12)
        assert np.abs(out[:, 0] - exact).max() < 1e-12

    def test_sor_and_anderson_reach_tolerance(self):
        matrix, b, exact, _ = _three_state_chain()
        for oracle in ("sor", "anderson"):
            out = run_oracle(matrix, b, np.zeros_like(b), oracle, 3, 1e-12)
            assert np.abs(out[:, 0] - exact).max() < 1e-8, oracle

    def test_singular_system_raises_oracle_failure(self):
        # row sums exactly 1 make I - A singular: the oracle must fail
        # loudly (and the engine fall back), never return garbage silently
        stochastic = np.array([[0.0, 1.0], [1.0, 0.0]])
        rhs = np.zeros((2, 2))
        with pytest.raises(OracleFailure):
            run_oracle(stochastic, rhs, rhs.copy(), "direct", 2, 1e-12)

    def test_unknown_oracle_rejected(self):
        matrix, b, _, _ = _three_state_chain()
        with pytest.raises(ValueError):
            run_oracle(matrix, b, b.copy(), "multigrid", 3, 1e-12)


class TestEngineFallback:
    """A broken oracle can cost time but never soundness: the engine's
    fallback result must be *bitwise* the pure-sweep result."""

    def _model(self):
        pts = compile_source(SLOW_GAMBLER, name="slow-gambler").pts
        return build_sparse_model(pts, max_states=20_000)

    def test_rejected_candidates_fall_back_bitwise(self, monkeypatch):
        model = self._model()
        ref = iterate_model(model, solver="sweep")

        def hostile_oracle(matrix, rhs, x0, oracle, n, tol):
            # wrong by a mile on every column, and claims nothing
            return np.full_like(x0, 0.123)

        monkeypatch.setattr(solvers, "run_oracle", hostile_oracle)
        fast = iterate_model(model, solver="direct")
        assert fast.solver == "sweep"  # nothing adopted
        assert not fast.certified
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper
        assert fast.iterations == ref.iterations

    def test_oracle_failure_falls_back_bitwise(self, monkeypatch):
        model = self._model()
        ref = iterate_model(model, solver="sweep")

        def failing_oracle(matrix, rhs, x0, oracle, n, tol):
            raise OracleFailure("injected")

        monkeypatch.setattr(solvers, "run_oracle", failing_oracle)
        fast = iterate_model(model, solver="direct")
        assert fast.solver == "sweep"
        assert not fast.certified
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper
        assert fast.iterations == ref.iterations

    def test_nan_candidates_fall_back_bitwise(self, monkeypatch):
        model = self._model()
        ref = iterate_model(model, solver="sweep")
        monkeypatch.setattr(
            solvers,
            "run_oracle",
            lambda matrix, rhs, x0, oracle, n, tol: np.full_like(x0, np.nan),
        )
        fast = iterate_model(model, solver="direct")
        assert fast.solver == "sweep"
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper


class TestOracleAgreement:
    """Adopted brackets vs pure sweeps on the Table 1 workload shapes."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("oracle", ["direct", "sor", "anderson"])
    def test_oracle_brackets_never_escape_the_sweep_bracket(self, name, oracle):
        pts = compile_source(PROGRAMS[name], name=name).pts
        model = build_sparse_model(pts, max_states=50_000)
        ref = iterate_model(model, solver="sweep")
        fast = iterate_model(model, solver=oracle)
        tol = ORACLE_TOL[oracle]
        assert fast.lower <= fast.upper + 1e-12
        # tighter-or-equal up to the slack budget, never outward
        assert fast.lower >= ref.lower - tol
        assert fast.upper <= ref.upper + tol

    def test_fast_converging_models_stay_bit_identical_under_auto(self):
        # the warmup sweeps converge before any oracle engages, so auto is
        # literally the same computation as sweep on fast-mixing models
        pts = compile_source(PROGRAMS["coin"], name="coin").pts
        model = build_sparse_model(pts)
        auto = iterate_model(model, solver="auto")
        sweep = iterate_model(model, solver="sweep")
        assert auto.solver == "sweep"  # no oracle ran
        assert auto.lower == sweep.lower
        assert auto.upper == sweep.upper
        assert auto.iterations == sweep.iterations

    def test_slow_mixing_chain_certifies_under_auto(self):
        pts = compile_source(SLOW_GAMBLER, name="slow-gambler").pts
        model = build_sparse_model(pts, max_states=20_000)
        fast = iterate_model(model, solver="auto")
        sweep = iterate_model(model, solver="sweep")
        assert fast.solver == "direct"
        assert fast.certified
        assert fast.certify_sweeps >= 1
        assert fast.oracle_residual is not None
        assert fast.oracle_residual <= 1e-10
        # dramatically fewer sweeps than the pure schedule
        assert fast.iterations < sweep.iterations // 10
        # the assert fires when the walk exits rich (x = 120), so the
        # analytic vpf from x = 30 is 30/120 = 1/4 — the certified
        # bracket must contain it
        assert fast.lower - 1e-9 <= 0.25 <= fast.upper + 1e-9
        # and is tighter-or-equal to the sweep bracket
        assert fast.lower >= sweep.lower - 1e-12
        assert fast.upper <= sweep.upper + 1e-12

    def test_value_iteration_threads_the_solver_parameter(self):
        pts = compile_source(SLOW_GAMBLER, name="slow-gambler").pts
        fast = value_iteration(pts, max_states=20_000, solver="auto")
        assert fast.certified
        assert fast.solver == "direct"
        forced = value_iteration(pts, max_states=20_000, solver="sor")
        assert forced.solver in ("sor", "sweep")
        assert abs(forced.lower - fast.lower) < 1e-6
