"""Size-based GC of the on-disk result cache.

Invariants pinned here:

* eviction is LRU by mtime — oldest entries go first, and a cache *hit*
  re-touches its entry so hot results outlive cold ones;
* GC never evicts an entry written during the current run, even when
  clock skew makes it look ancient;
* an unconfigured budget (0 / unset) never evicts — the pre-GC behavior;
* only ``*.pkl`` entries (and orphaned ``*.tmp`` spills) are touched.
"""

import os
import time

import pytest

from repro.engine import AnalysisEngine, AnalysisTask, ProgramSpec, ResultCache
from repro.engine.cache import parse_size
from repro.engine.task import CertificateResult

pytestmark = pytest.mark.smoke

CHAIN_SPEC = ProgramSpec.from_source(
    "const p = 0.01\ni := 0\nwhile i <= 9:\n    if prob(1 - p):\n"
    "        i := i + 1\n    else:\n        exit\nassert false",
    name="gc-chain",
)


def _age(path, seconds):
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def _foreign_entry(directory, name, size=100, age=0.0):
    """An entry written by 'some other run' (not in the session-key set)."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.pkl"
    path.write_bytes(b"x" * size)
    if age:
        _age(path, age)
    return path


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("500") == 500
        assert parse_size("64k") == 64 * 1024
        assert parse_size("128M") == 128 * 1024**2
        assert parse_size("2g") == 2 * 1024**3
        assert parse_size("1.5k") == 1536

    def test_rejects_garbage(self):
        for bad in ("", "fast", "-5", "10q"):
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_env_budget_is_read(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "64k")
        assert ResultCache(tmp_path / "c").max_bytes == 64 * 1024
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert ResultCache(tmp_path / "c").max_bytes == 0


class TestGC:
    def test_evicts_oldest_first_until_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        oldest = _foreign_entry(tmp_path / "c", "k0", size=100, age=300)
        middle = _foreign_entry(tmp_path / "c", "k1", size=100, age=200)
        newest = _foreign_entry(tmp_path / "c", "k2", size=100, age=100)
        report = cache.gc(max_bytes=250)
        assert report.evicted == 1 and report.freed_bytes == 100
        assert not oldest.exists() and middle.exists() and newest.exists()
        assert report.kept == 2 and report.kept_bytes == 200
        assert cache.evictions == 1

    def test_zero_budget_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path / "c")  # no env, no constructor budget
        entry = _foreign_entry(tmp_path / "c", "k0", age=1000)
        assert cache.gc().evicted == 0
        assert cache.gc(max_bytes=0).evicted == 0
        assert entry.exists()

    def test_never_evicts_entries_written_this_run(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("fresh", CertificateResult(algorithm="x", status="ok"))
        fresh = cache._path("fresh")
        # make the session entry look ancient: clock skew or a bulk import
        # must not be able to break the do-not-evict promise
        _age(fresh, 10_000)
        foreign = _foreign_entry(tmp_path / "c", "old", size=fresh.stat().st_size)
        report = cache.gc(max_bytes=1)
        assert fresh.exists() and not foreign.exists()
        assert report.protected == 1 and report.evicted == 1

    def test_hit_touches_mtime_for_lru(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("hot", CertificateResult(algorithm="x", status="ok"))
        path = cache._path("hot")
        _age(path, 5000)
        before = path.stat().st_mtime
        assert cache.get("hot") is not None
        assert path.stat().st_mtime > before

    def test_non_entry_files_are_left_alone(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        _foreign_entry(tmp_path / "c", "k0", age=100)
        keepme = tmp_path / "c" / "README.txt"
        keepme.write_text("not an entry")
        _age(keepme, 99_999)
        cache.gc(max_bytes=1)
        assert keepme.exists()

    def test_orphaned_tmp_spills_are_swept(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        (tmp_path / "c").mkdir(parents=True, exist_ok=True)
        stale = tmp_path / "c" / "dead-writer.tmp"
        stale.write_bytes(b"torn")
        _age(stale, 7200)
        young = tmp_path / "c" / "live-writer.tmp"
        young.write_bytes(b"inflight")
        cache.gc(max_bytes=10**9)
        assert not stale.exists() and young.exists()

    def test_stats_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_bytes=4096)
        _foreign_entry(tmp_path / "c", "k0", size=120, age=50)
        _foreign_entry(tmp_path / "c", "k1", size=80)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes == 200
        assert stats.max_bytes == 4096
        assert stats.oldest_age_seconds >= 49


class TestEngineIntegration:
    def test_engine_close_collects_when_budget_configured(self, tmp_path):
        foreign = _foreign_entry(tmp_path / "c", "cold", size=4096, age=5000)
        cache = ResultCache(tmp_path / "c", max_bytes=1024)
        with AnalysisEngine(cache=cache) as engine:
            result = engine.run_inline(AnalysisTask.make("explowsyn", CHAIN_SPEC))
            assert result.ok
        # close() ran gc: the foreign cold entry went, this run's stayed
        assert not foreign.exists()
        assert cache._path(AnalysisTask.make("explowsyn", CHAIN_SPEC).cache_key).exists()

    def test_engine_close_without_budget_keeps_everything(self, tmp_path):
        foreign = _foreign_entry(tmp_path / "c", "cold", size=4096, age=5000)
        with AnalysisEngine(cache=ResultCache(tmp_path / "c")) as engine:
            engine.run_inline(AnalysisTask.make("explowsyn", CHAIN_SPEC))
        assert foreign.exists()
