"""Tests for exponential templates and constraint canonicalization."""

import math
from fractions import Fraction

import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.core.canonical import canonicalize
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpTemplate

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""


def race_pts():
    return compile_source(RACE, name="race").pts


class TestExpTemplate:
    def test_unknown_names_unique(self):
        pts = race_pts()
        t = ExpTemplate(pts)
        names = t.unknowns()
        assert len(names) == len(set(names))
        assert len(names) == len(t.locations) * (len(pts.program_vars) + 1)

    def test_include_sinks_adds_rows(self):
        pts = race_pts()
        with_sinks = ExpTemplate(pts, include_sinks=True)
        without = ExpTemplate(pts, include_sinks=False)
        assert len(with_sinks.locations) == len(without.locations) + 2

    def test_eta_at_builds_affine_expression(self):
        pts = race_pts()
        t = ExpTemplate(pts)
        loc = pts.init_location
        expr = t.eta_at(loc, {"x": Fraction(40), "y": Fraction(0)})
        assert expr.coeff(t.a_name(loc, "x")) == 40
        assert expr.coeff(t.b_name(loc)) == 1

    def test_unknown_location_rejected(self):
        pts = race_pts()
        t = ExpTemplate(pts)
        with pytest.raises(ModelError):
            t.coeff(pts.term_location, "x")

    def test_instantiate_defaults_to_zero(self):
        pts = race_pts()
        sf = ExpTemplate(pts).instantiate({})
        assert sf.exponent(pts.init_location, {"x": 1.0, "y": 1.0}) == 0.0


class TestExpStateFunction:
    def test_sink_conventions(self):
        pts = race_pts()
        sf = ExpTemplate(pts).instantiate({})
        assert sf.log_value(pts.term_location, {"x": 0, "y": 0}) == float("-inf")
        assert sf.log_value(pts.fail_location, {"x": 0, "y": 0}) == 0.0
        assert sf.value(pts.term_location, {"x": 0, "y": 0}) == 0.0
        assert sf.value(pts.fail_location, {"x": 0, "y": 0}) == 1.0

    def test_exponent_evaluation(self):
        pts = race_pts()
        t = ExpTemplate(pts)
        loc = pts.init_location
        sf = t.instantiate({t.a_name(loc, "x"): -1.0, t.b_name(loc): 5.0})
        assert sf.exponent(loc, {"x": 2.0, "y": 9.0}) == pytest.approx(3.0)
        assert sf.value(loc, {"x": 2.0, "y": 9.0}) == pytest.approx(math.exp(3.0))

    def test_unknown_location_raises(self):
        pts = race_pts()
        sf = ExpTemplate(pts).instantiate({})
        with pytest.raises(ModelError):
            sf.log_value("nowhere", {})

    def test_render(self):
        pts = race_pts()
        t = ExpTemplate(pts)
        loc = pts.init_location
        sf = t.instantiate({t.a_name(loc, "x"): -1.19, t.b_name(loc): 31.79})
        out = sf.render(loc)
        assert out.startswith("exp(") and "1.19*x" in out and "31.8" in out

    def test_render_zero(self):
        pts = race_pts()
        sf = ExpTemplate(pts).instantiate({})
        assert sf.render(pts.init_location) == "exp(0)"


class TestCanonicalize:
    def test_race_structure(self):
        pts = race_pts()
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        by_forks = sorted(len(c.terms) for c in cons)
        # loop body transition has 2 exponential terms; fail edge has 1;
        # pure-termination edges have 0 terms
        assert by_forks[-1] == 2
        assert 1 in by_forks
        assert 0 in by_forks

    def test_term_fork_dropped_and_counted(self):
        src = (
            "const p = 0.25\n"
            "x := 1\n"
            "while x <= 9:\n"
            "  switch:\n"
            "    prob(p): exit\n"
            "    prob(1 - p): x := x + 1\n"
            "assert false"
        )
        pts = compile_source(src, name="drop").pts
        inv = generate_interval_invariants(pts)
        cons = canonicalize(pts, inv, ExpTemplate(pts))
        switch_cons = [c for c in cons if c.dropped_probability > 0]
        assert switch_cons
        assert switch_cons[0].dropped_probability == Fraction(1, 4)

    def test_fail_fork_has_negated_source_template(self):
        pts = race_pts()
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        fail_terms = [
            t
            for c in cons
            for t in c.terms
            if t.destination == pts.fail_location
        ]
        assert fail_terms
        term = fail_terms[0]
        # alpha = -a_src exactly
        src = [c for c in cons for t in c.terms if t is term][0].source
        assert term.alpha["x"] == -template.coeff(src, "x")
        assert term.beta == -template.const(src)

    def test_update_coefficients_propagate(self):
        pts = race_pts()
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        body = [c for c in cons if len(c.terms) == 2][0]
        # fork x,y := x+1,y+2 contributes beta = a_dst_x + 2 a_dst_y + b_dst - b_src
        dst = body.terms[0].destination
        beta = body.terms[0].beta
        assert beta.coeff(template.a_name(dst, "x")) in (1, 1)
        coeffs = sorted(
            abs(beta.coeff(template.a_name(dst, v))) for v in ("x", "y")
        )
        assert coeffs == [1, 2] or coeffs == [1, 1]

    def test_vacuous_transitions_skipped(self):
        pts = race_pts()
        # an invariant claiming x >= 1000 at the head makes guards unsatisfiable
        from repro.polyhedra import Polyhedron

        inv = InvariantMap(pts, {pts.init_location: Polyhedron.from_box({"x": (1000, None)})})
        template = ExpTemplate(pts)
        restricted = canonicalize(pts, inv, template)
        full = canonicalize(pts, InvariantMap(pts), template)
        # the loop-enter and fail transitions (x <= 99) become vacuous
        assert len(restricted) < len(full)
        assert all(not c.psi.is_empty() for c in restricted)

    def test_alpha_at_point(self):
        pts = race_pts()
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        body = [c for c in cons if len(c.terms) == 2][0]
        point = {v: Fraction(0) for v in pts.program_vars}
        assert body.terms[0].alpha_at(point) == body.terms[0].beta
