"""Deterministic fault injection and the engine's fault-tolerance layer.

Two tiers live here:

* plain unit tests of the :mod:`repro.engine.faults` harness itself
  (parsing, matching, the worker-kill safety gate) — these run everywhere;
* ``@pytest.mark.chaos`` tests that *provoke* every failure mode the
  engine promises to absorb — worker kills, transient faults, deadlines,
  pool-rebuild exhaustion, a SIGKILLed worker-service daemon, dropped
  service replies — and assert the two load-bearing properties of
  ``docs/ARCHITECTURE.md`` "Failure semantics":

  1. **no unbounded waits**: every provoked failure surfaces or recovers
     within seconds;
  2. **retry determinism**: a fault-forced retry produces results
     canonically identical (all fields except wall-clock ``seconds`` and
     the ``cached`` flag) to a fault-free serial run, including the
     on-disk cache entries it leaves behind.

Determinism notes: fault rules fire on (task_id substring, attempt index)
only, and attempt indices travel in the submitted payload, so which
attempts fail is a pure function of the plan.  Kill-target tasks are
listed *first* in their DAGs: broken in-flight futures settle in
submission order, so the faulting task — not an innocent bystander — is
deterministically the one charged with the attempt.
"""

import os
import signal
import subprocess
import time
from dataclasses import asdict

import pytest

from repro.errors import EngineError, TaskError, TaskTimeoutError
from repro.engine import (
    AnalysisEngine,
    AnalysisTask,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ProcessPoolScheduler,
    ProgramSpec,
    ResultCache,
    RetryPolicy,
    SerialScheduler,
)
from repro.engine.faults import ENV_VAR, active_plan, task_boundary
from repro.engine.task import CertificateResult

SPEC = ProgramSpec.from_source("x := 0\nassert false", name="faults-dummy")

RACE_SOURCE = """\
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""


# -- helper algorithm (module-level: pool workers resolve it by name) -------------


def synthesize_value(task, deps=None, engine=None):
    """Pure function of its params (plus an optional sleep), so canonical
    equality across backends/retries is a meaningful assertion."""
    time.sleep(float(task.param("sleep", 0.0)))
    x = float(task.param("x", 1.0))
    return CertificateResult(
        algorithm=task.algorithm,
        status="ok",
        log_bound=3.0 * x,
        details={"x": x, "deps_seen": sorted(deps or {})},
    )


@pytest.fixture
def scratch_algorithms():
    from repro.engine import engine as engine_mod

    added = {"t_value": "test_faults:synthesize_value"}
    engine_mod.ALGORITHMS.update(added)
    yield
    for name in added:
        engine_mod.ALGORITHMS.pop(name, None)
        engine_mod._RESOLVED.pop(name, None)


def _value_task(task_id, x=1.0, sleep=0.0, depends_on=(), cacheable=False):
    return AnalysisTask.make(
        "t_value",
        SPEC,
        params={"x": x, "sleep": sleep, "tag": task_id},
        task_id=task_id,
        depends_on=depends_on,
        cacheable=cacheable,
    )


def canon(result):
    """Everything but wall-clock: the bit-identity comparison form."""
    data = asdict(result)
    data.pop("seconds")
    data.pop("cached")
    return data


def _serial_baseline(tasks, cache=None):
    engine = AnalysisEngine(SerialScheduler(), cache=cache)
    try:
        return {tid: canon(r) for tid, r in engine.run(tasks).items()}
    finally:
        engine.close()


# -- the harness itself -----------------------------------------------------------


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule("worker.kill", match="victim", times=2),
                FaultRule("task.latency", delay=1.5),
            ],
            seed=7,
        )
        parsed = FaultPlan.parse(plan.to_spec())
        assert parsed.seed == 7
        assert parsed.rules == plan.rules

    def test_unknown_site_is_rejected(self):
        with pytest.raises(EngineError, match="unknown fault site"):
            FaultRule("task.meteor")

    def test_nonpositive_times_is_rejected(self):
        with pytest.raises(EngineError, match="times must be >= 1"):
            FaultRule("task.transient", times=0)

    def test_malformed_specs_are_loud(self):
        with pytest.raises(EngineError, match="not valid JSON"):
            FaultPlan.parse("{nope")
        with pytest.raises(EngineError, match="must be an object"):
            FaultPlan.parse('["task.transient"]')
        with pytest.raises(EngineError, match="missing 'site'"):
            FaultPlan.parse('{"rules": [{"match": "x"}]}')

    def test_rules_fire_on_match_and_attempt_only(self):
        rule = FaultRule("task.transient", match="victim", times=2)
        assert rule.applies("the-victim-task", 0)
        assert rule.applies("the-victim-task", 1)
        assert not rule.applies("the-victim-task", 2)  # attempts exhausted
        assert not rule.applies("bystander", 0)  # no substring match
        assert FaultRule("task.transient").applies("anything", 0)  # "*"

    def test_installed_sets_and_restores_env(self):
        plan = FaultPlan([FaultRule("task.transient")])
        assert os.environ.get(ENV_VAR) is None
        with plan.installed():
            assert active_plan() is not None
            assert active_plan().rules == plan.rules
        assert os.environ.get(ENV_VAR) is None
        assert active_plan() is None

    def test_task_boundary_is_a_noop_without_a_plan(self):
        task_boundary("anything", 0)  # must not raise

    def test_task_boundary_raises_transient_on_injected_attempts(self):
        plan = FaultPlan([FaultRule("task.transient", match="victim", times=1)])
        with plan.installed():
            with pytest.raises(InjectedFault, match="attempt 0"):
                task_boundary("victim", 0)
            task_boundary("victim", 1)  # the retry sails through
            task_boundary("bystander", 0)

    def test_worker_kill_never_fires_in_the_owning_process(self):
        # the safety gate: a kill rule in the process that installed the
        # plan must be inert, or a chaos test could take pytest down
        plan = FaultPlan([FaultRule("worker.kill", match="victim")])
        with plan.installed():
            task_boundary("victim", 0)  # still alive iff the gate holds

    def test_jittered_delay_is_deterministic_and_bounded(self):
        plan = FaultPlan([FaultRule("task.latency", delay=1.0)], seed=3)
        rule = plan.rules[0]
        once = plan.jittered_delay(rule, "some-task")
        assert once == plan.jittered_delay(rule, "some-task")
        assert 1.0 <= once <= 1.1
        assert plan.jittered_delay(rule, "other-task") != once


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.0, max_delay=0.3)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 5) == 0.3  # capped

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.5)
        assert policy.delay("a", 1) == policy.delay("a", 1)
        assert policy.delay("a", 1) != policy.delay("b", 1)


# -- chaos: pool backends ---------------------------------------------------------


@pytest.mark.chaos
class TestPoolChaos:
    def test_worker_kill_is_healed_and_results_identical(self, scratch_algorithms):
        # victim first: broken futures settle in submit order, so the kill
        # is deterministically charged to the victim, not the sleeper
        tasks = [
            _value_task("victim", x=2.0),
            _value_task("sleeper", x=3.0, sleep=1.0),
            _value_task("child", x=5.0, depends_on=("victim",)),
        ]
        baseline = _serial_baseline(tasks)
        plan = FaultPlan([FaultRule("worker.kill", match="victim", times=1)])
        engine = AnalysisEngine(ProcessPoolScheduler(jobs=2))
        with plan.installed():
            try:
                results = engine.run(tasks)
            finally:
                engine.close()
        assert {tid: canon(r) for tid, r in results.items()} == baseline
        assert engine.degradation.count("pool-rebuild") == 1
        assert engine.degradation.count("backend-switch") == 0

    def test_transient_fault_is_retried_to_identical_result(self, scratch_algorithms):
        tasks = [_value_task("flaky", x=4.0), _value_task("steady", x=1.0)]
        baseline = _serial_baseline(tasks)
        plan = FaultPlan([FaultRule("task.transient", match="flaky", times=2)])
        engine = AnalysisEngine(SerialScheduler())
        with plan.installed():
            results = engine.run(tasks)
        engine.close()
        assert {tid: canon(r) for tid, r in results.items()} == baseline
        retries = [e for e in engine.degradation.events if e.kind == "retry"]
        assert len(retries) == 2
        assert all(e.task_id == "flaky" for e in retries)

    def test_retries_exhausted_fails_with_attempt_count(self, scratch_algorithms):
        plan = FaultPlan([FaultRule("task.transient", match="doomed", times=99)])
        engine = AnalysisEngine(SerialScheduler())  # no fallbacks to hide behind
        with plan.installed():
            with pytest.raises(TaskError, match="failed after 3 attempt"):
                engine.run([_value_task("doomed")])
        engine.close()

    def test_degradation_chain_pool_to_serial(self, scratch_algorithms):
        # the kill rule never stops firing, so the pool backend can never
        # finish the victim; the engine must burn its rebuild budget, fall
        # back to serial (where worker.kill is inert by design) and still
        # produce the fault-free results
        tasks = [
            _value_task("victim", x=2.0),
            _value_task("sleeper", x=3.0, sleep=1.5),
        ]
        baseline = _serial_baseline(tasks)
        plan = FaultPlan([FaultRule("worker.kill", match="victim", times=99)])
        engine = AnalysisEngine(
            ProcessPoolScheduler(jobs=2),
            fallbacks=[SerialScheduler],
            max_pool_rebuilds=1,
        )
        with plan.installed():
            try:
                results = engine.run(tasks)
            finally:
                engine.close()
        assert {tid: canon(r) for tid, r in results.items()} == baseline
        assert engine.degradation.count("backend-switch") == 1
        switch = [e for e in engine.degradation.events if e.kind == "backend-switch"][0]
        assert switch.backend == "pool -> serial"

    def test_deadline_expiry_is_retried_to_identical_result(self, scratch_algorithms):
        # injected latency (5 s) on the victim's first attempt only; the
        # 0.6 s deadline expires it, the rebuild reclaims the sleeping
        # worker, and the retry — without latency — matches the baseline
        tasks = [_value_task("slowpoke", x=2.0), _value_task("quick", x=1.0)]
        baseline = _serial_baseline(tasks)
        plan = FaultPlan(
            [FaultRule("task.latency", match="slowpoke", times=1, delay=5.0)]
        )
        engine = AnalysisEngine(ProcessPoolScheduler(jobs=2), task_timeout=0.6)
        start = time.monotonic()
        with plan.installed():
            try:
                results = engine.run(tasks)
            finally:
                engine.close()
        assert time.monotonic() - start < 10.0  # far less than the 5 s sleep x3
        assert {tid: canon(r) for tid, r in results.items()} == baseline
        retries = [e for e in engine.degradation.events if e.kind == "retry"]
        assert any("deadline" in e.detail for e in retries)

    def test_deadlines_exhausted_raise_timeout_error(self, scratch_algorithms):
        plan = FaultPlan(
            [FaultRule("task.latency", match="glacial", times=99, delay=5.0)]
        )
        engine = AnalysisEngine(
            ProcessPoolScheduler(jobs=2),
            task_timeout=0.3,
            retry_policy=RetryPolicy(retries=1),
        )
        tasks = [_value_task("glacial"), _value_task("companion", sleep=0.05)]
        start = time.monotonic()
        with plan.installed():
            with pytest.raises(TaskTimeoutError, match="failed after 2 attempt"):
                try:
                    engine.run(tasks)
                finally:
                    engine.close()
        assert time.monotonic() - start < 10.0


# -- chaos: retry determinism (results and cache) ---------------------------------


@pytest.mark.chaos
class TestRetryDeterminism:
    def test_faulted_pool_run_matches_clean_serial_run_and_cache(
        self, scratch_algorithms, tmp_path
    ):
        def tasks():
            return [
                _value_task("det/a", x=2.0, cacheable=True),
                _value_task("det/b", x=3.0, depends_on=("det/a",), cacheable=True),
                _value_task("det/c", x=5.0, cacheable=True),
            ]

        clean_cache = ResultCache(tmp_path / "clean")
        baseline = _serial_baseline(tasks(), cache=clean_cache)

        chaos_cache = ResultCache(tmp_path / "chaos")
        plan = FaultPlan(
            [
                FaultRule("worker.kill", match="det/a", times=1),
                FaultRule("task.transient", match="det/b", times=1),
                FaultRule("task.latency", match="det/c", times=1, delay=0.1),
            ]
        )
        engine = AnalysisEngine(ProcessPoolScheduler(jobs=2), cache=chaos_cache)
        with plan.installed():
            try:
                results = engine.run(tasks())
            finally:
                engine.close()
        assert {tid: canon(r) for tid, r in results.items()} == baseline

        clean_keys = {p.name for p in (tmp_path / "clean").glob("*.pkl")}
        chaos_keys = {p.name for p in (tmp_path / "chaos").glob("*.pkl")}
        assert clean_keys == chaos_keys and len(clean_keys) == 3
        for name in clean_keys:
            key = name[: -len(".pkl")]
            assert canon(clean_cache.get(key)) == canon(chaos_cache.get(key))

    def test_real_synthesis_retry_is_bit_identical(self):
        # the paper-facing acceptance check: a Hoeffding synthesis whose
        # first attempt is killed by an injected transient re-runs to the
        # same certificate a fault-free engine produces
        spec = ProgramSpec.from_source(RACE_SOURCE, name="chaos-race")
        task = AnalysisTask.make("hoeffding", spec, task_id="chaos/race")
        clean_engine = AnalysisEngine(SerialScheduler())
        baseline = canon(clean_engine.run_inline(task))
        clean_engine.close()

        plan = FaultPlan([FaultRule("task.transient", match="chaos/race", times=1)])
        engine = AnalysisEngine(SerialScheduler())
        with plan.installed():
            retried = canon(engine.run_inline(task))
        engine.close()
        assert retried == baseline
        assert engine.degradation.count("retry") == 1

    def test_probe_subtask_fault_retries_the_enclosing_synthesis(self):
        # a transient on the eps-probe *subtasks* (":probe:" task ids)
        # must propagate as infrastructure, retry the whole synthesis with
        # attempt 1 threaded into the probe payloads, and converge to the
        # serial bound
        spec = ProgramSpec.from_source(RACE_SOURCE, name="chaos-race-pool")
        task = AnalysisTask.make("hoeffding", spec, task_id="chaos/pool-race")
        clean_engine = AnalysisEngine(SerialScheduler())
        baseline = canon(clean_engine.run_inline(task))
        clean_engine.close()

        plan = FaultPlan([FaultRule("task.transient", match=":probe:", times=1)])
        engine = AnalysisEngine(ProcessPoolScheduler(jobs=2))
        with plan.installed():
            try:
                retried = canon(engine.run_inline(task))
            finally:
                engine.close()
        assert retried == baseline
        assert engine.degradation.count("retry") >= 1


# -- chaos: the worker-service daemon ---------------------------------------------

CHAIN_SOURCE = """\
const p = 0.01
i := 0
while i <= 9:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""


@pytest.mark.chaos
class TestServiceChaos:
    def test_daemon_killed_mid_task_fails_fast_and_next_start_sweeps(self, tmp_path):
        # the regression this PR exists for: a client blocked in recv() on
        # a SIGKILLed daemon used to hang forever; liveness polling must
        # turn it into a TaskError within a few poll ticks
        from repro.engine.workers import ServiceScheduler, start_service, stop_service

        directory = tmp_path / "svc-kill"
        try:
            status = start_service(directory, jobs=1, idle_timeout=120)
            sched = ServiceScheduler(directory)
            future = sched.submit(time.sleep, 30)
            time.sleep(0.5)  # let the daemon accept and start the task
            os.kill(status["pid"], signal.SIGKILL)
            start = time.monotonic()
            # in this test the daemon is our direct child, so until it is
            # reaped it lingers as a zombie and reads as "wedged" (stale
            # heartbeat, ~3 s); a reparented daemon reads as "died" within
            # one poll tick — both end the wait, which is the contract
            with pytest.raises(TaskError, match="mid-task|wedged"):
                future.result(timeout=30)
            assert time.monotonic() - start < 8.0
            try:  # reap the zombie so the restart sees a truly dead pid
                os.waitpid(status["pid"], 0)
            except ChildProcessError:
                pass
            # the crash left socket/pid files behind; a fresh start reaps
            # them instead of refusing to bind
            status = start_service(directory, jobs=1, idle_timeout=120)
            assert status.get("swept_stale") is True
            assert not status.get("already_running")
        finally:
            stop_service(directory)

    def test_restart_after_crash_with_orphaned_workers_is_bounded(self, tmp_path):
        # found by driving the CLI: a SIGKILLed daemon's forked pool
        # workers inherit the listening socket fd, so the stale socket
        # kept *accepting* connects into a backlog nobody drained — one
        # status ping filled it and the next `workers start` blocked in
        # connect() forever.  Connects are now time-bounded and the
        # sweeper kills the dead daemon's process group.
        from repro.engine.workers import (
            ServiceScheduler,
            service_health,
            start_service,
            stop_service,
        )

        directory = tmp_path / "svc-orphans"
        try:
            status = start_service(directory, jobs=2, idle_timeout=120)
            pid = status["pid"]
            sched = ServiceScheduler(directory)
            sched.map(time.sleep, [0.01, 0.01])  # fork the pool workers
            os.killpg(pid, 0)  # the daemon leads a live process group
            os.kill(pid, signal.SIGKILL)
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
            # the orphans keep the listener open: this ping *connects* but
            # is never served — it must still classify and return
            start = time.monotonic()
            assert service_health(directory)["state"] == "stale"
            status = start_service(directory, jobs=2, idle_timeout=120)
            assert time.monotonic() - start < 30.0
            assert status.get("swept_stale") is True
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.killpg(pid, 0)
                except ProcessLookupError:
                    break  # group empty: orphans reaped
                time.sleep(0.1)
            else:
                pytest.fail("orphaned pool workers survived the sweep")
        finally:
            stop_service(directory)

    def test_injected_faults_leave_service_results_identical(self, tmp_path):
        # the ISSUE's acceptance scenario: one worker killed mid-task AND
        # one dropped socket reply, against real synthesis tasks through
        # the daemon — results must match a fault-free serial run, and the
        # daemon must report that it healed its pool
        from repro.engine.workers import (
            ServiceScheduler,
            service_status,
            start_service,
            stop_service,
        )

        race = ProgramSpec.from_source(RACE_SOURCE, name="chaos-svc-race")
        chain = ProgramSpec.from_source(CHAIN_SOURCE, name="chaos-svc-chain")
        tasks = [
            AnalysisTask.make("hoeffding", race, task_id="svc/kill-me"),
            AnalysisTask.make("explowsyn", chain, task_id="svc/drop-me"),
        ]
        baseline = _serial_baseline(tasks)
        plan = FaultPlan(
            [
                FaultRule("worker.kill", match="svc/kill-me", times=1),
                FaultRule("service.drop_reply", match="svc/drop-me", times=1),
            ]
        )
        directory = tmp_path / "svc-chaos"
        # installed BEFORE start_service: the daemon inherits REPRO_FAULTS
        with plan.installed():
            try:
                start_service(directory, jobs=2, idle_timeout=120)
                engine = AnalysisEngine(ServiceScheduler(directory))
                try:
                    results = engine.run(tasks)
                finally:
                    engine.close()
                status = service_status(directory)
                assert status is not None
                assert status["pool_rebuilds"] >= 1  # the daemon self-healed
            finally:
                stop_service(directory)
        assert {tid: canon(r) for tid, r in results.items()} == baseline
        retried = {e.task_id for e in engine.degradation.events if e.kind == "retry"}
        assert "svc/drop-me" in retried

    def test_workers_status_distinguishes_wedged_from_stale(self, tmp_path):
        import json
        import sys

        from repro.cli import main
        from repro.engine.workers import (
            _paths,
            service_health,
            sweep_stale_service,
        )

        # wedged: the pid is alive (ours) but nothing answers pings and the
        # heartbeat is long stale — exit 2, and the sweeper must NOT touch
        # it (it owns a real process)
        wedged = tmp_path / "svc-wedged"
        wedged.mkdir()
        paths = _paths(wedged)
        paths["pid"].write_text(str(os.getpid()))
        paths["heartbeat"].write_text(
            json.dumps({"time": time.time() - 60.0, "pid": os.getpid(), "interval": 1.0})
        )
        assert service_health(wedged)["state"] == "wedged"
        assert main(["workers", "status", "--dir", str(wedged)]) == 2
        assert sweep_stale_service(wedged) is False
        assert paths["pid"].exists()

        # stale: state files with a dead pid — exit 1, and the sweeper reaps
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(proc.stdout.strip())
        stale = tmp_path / "svc-stale"
        stale.mkdir()
        _paths(stale)["pid"].write_text(str(dead_pid))
        assert service_health(stale)["state"] == "stale"
        assert main(["workers", "status", "--dir", str(stale)]) == 1
        assert sweep_stale_service(stale) is True
        assert service_health(stale)["state"] == "down"
