"""Syntax/shape validation of the GitHub Actions workflows.

``act``/``actions/workflow`` are not available in the test container, so
this is the acceptance gate for ``.github/workflows/*.yml``: every file
must be parseable YAML with the job structure the repo's CI contract
promises (tier-1 + smoke + lint + the PR-blocking run-certificate,
chaos fault-injection, and seeded fuzz-smoke gates on pushes and PRs;
the non-blocking bench job on schedule/dispatch — plus advisory on
fixpoint-touching PRs via a paths filter — with the artifact uploads,
the nightly bitwise two-engine parity re-run, the budgeted fresh-seed
fuzzing farm, and the ``REPRO_BENCH_GATE_FACTOR`` knob).
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

pytestmark = pytest.mark.smoke

WORKFLOWS = Path(__file__).resolve().parent.parent / ".github" / "workflows"


def _load(name):
    data = yaml.safe_load((WORKFLOWS / name).read_text())
    assert isinstance(data, dict), f"{name} did not parse to a mapping"
    # YAML 1.1 parses the bare key `on` as boolean True
    triggers = data.get("on", data.get(True))
    assert triggers is not None, f"{name} has no trigger block"
    return data, triggers


def _steps_text(job):
    return "\n".join(
        str(step.get("run", "")) + str(step.get("uses", ""))
        for step in job.get("steps", [])
    )


def test_workflow_files_exist():
    names = {p.name for p in WORKFLOWS.glob("*.yml")}
    assert {"ci.yml", "bench.yml"} <= names


def test_all_workflows_are_valid_yaml():
    for path in WORKFLOWS.glob("*.yml"):
        data, triggers = _load(path.name)
        assert data.get("jobs"), f"{path.name} defines no jobs"
        for job_name, job in data["jobs"].items():
            assert "runs-on" in job, f"{path.name}:{job_name} missing runs-on"
            assert job.get("steps"), f"{path.name}:{job_name} has no steps"


class TestCIWorkflow:
    def test_triggers_on_push_pr_and_dispatch(self):
        _, triggers = _load("ci.yml")
        assert "push" in triggers and "pull_request" in triggers
        assert "workflow_dispatch" in triggers

    def test_tier1_job_runs_the_roadmap_command_on_the_python_matrix(self):
        data, _ = _load("ci.yml")
        tier1 = data["jobs"]["tier1"]
        versions = tier1["strategy"]["matrix"]["python-version"]
        assert "3.10" in versions and "3.12" in versions
        text = _steps_text(tier1)
        assert "PYTHONPATH=src python -m pytest -x -q" in text

    def test_smoke_job_runs_the_smoke_marker(self):
        data, _ = _load("ci.yml")
        assert "pytest -m smoke" in _steps_text(data["jobs"]["smoke"])

    def test_lint_job_runs_ruff_with_a_timeout(self):
        data, _ = _load("ci.yml")
        lint = data["jobs"]["lint"]
        assert "ruff check" in _steps_text(lint)
        assert isinstance(lint.get("timeout-minutes"), int)

    def test_certificates_job_gates_the_fast_path(self):
        # the PR-blocking certificate gate: the fast path runs ONCE per
        # workload and its RunCertificate is independently verified —
        # explorer/solver regressions must fail CI without the 2x bitwise
        # two-engine re-run (that re-run is demoted to nightly bench.yml)
        data, _ = _load("ci.yml")
        job = data["jobs"]["certificates"]
        text = _steps_text(job)
        assert "tools/check_certificates.py" in text
        # the bitwise re-run must NOT ride on the PR gate anymore
        assert "check_explorer_parity.py" not in text
        # CLI round-trip: emit, verify, and assert a bit-flipped copy is
        # rejected with exit code 1 specifically (not a crash)
        assert "verify-certificate" in text
        assert '--certificate' in text
        assert 'test "$rc" -eq 1' in text
        # blocking by construction: no continue-on-error anywhere in the job
        assert not job.get("continue-on-error")
        assert all(not s.get("continue-on-error") for s in job["steps"])

    def test_no_job_invokes_the_reference_engine_twice(self):
        # acceptance bar of the certificate design: no ci.yml job pays for
        # the bitwise two-engine re-run
        data, _ = _load("ci.yml")
        for job_name, job in data["jobs"].items():
            assert "check_explorer_parity" not in _steps_text(job), (
                f"{job_name} still runs the bitwise parity re-run"
            )

    def test_chaos_job_gates_the_fault_injection_suite(self):
        # the PR-blocking chaos gate: fault-tolerance regressions (hangs,
        # lost retries, non-deterministic recovery) must fail CI
        data, _ = _load("ci.yml")
        job = data["jobs"]["chaos"]
        text = _steps_text(job)
        assert "pytest -m chaos" in text
        # a wedged daemon must fail the job, not stall CI forever
        assert isinstance(job.get("timeout-minutes"), int)
        # blocking by construction: no continue-on-error anywhere in the job
        assert not job.get("continue-on-error")
        assert all(not s.get("continue-on-error") for s in job["steps"])

    def test_fuzz_smoke_job_gates_the_seeded_differential_slice(self):
        # the PR-blocking fuzz gate: fixed-seed generator determinism,
        # farm oracle drills, and the certificate-as-oracle pins — the
        # open-ended fresh-seed farm stays nightly (bench.yml) so PRs
        # never block on luck, only on the reproducible slice
        data, _ = _load("ci.yml")
        job = data["jobs"]["fuzz-smoke"]
        text = _steps_text(job)
        assert "pytest -m fuzz_smoke" in text
        assert isinstance(job.get("timeout-minutes"), int)
        # blocking by construction: no continue-on-error anywhere in the job
        assert not job.get("continue-on-error")
        assert all(not s.get("continue-on-error") for s in job["steps"])

    def test_pip_caching_is_enabled(self):
        data, _ = _load("ci.yml")
        for job_name, job in data["jobs"].items():
            setup = [
                s for s in job["steps"] if "setup-python" in str(s.get("uses", ""))
            ]
            assert setup, f"{job_name} does not set up python"
            assert setup[0].get("with", {}).get("cache") == "pip", (
                f"{job_name} does not cache pip"
            )


class TestBenchWorkflow:
    def test_triggers_schedule_dispatch_and_fixpoint_prs(self):
        _, triggers = _load("bench.yml")
        assert "schedule" in triggers and "workflow_dispatch" in triggers
        assert "push" not in triggers
        # PRs run the bench only when they touch the exploration layers,
        # and only through a paths filter (never the whole PR stream)
        pr = triggers["pull_request"]
        assert isinstance(pr, dict) and pr.get("paths")
        assert "src/repro/core/fixpoint*.py" in pr["paths"]
        assert "src/repro/core/solvers.py" in pr["paths"]
        assert "src/repro/pts/model.py" in pr["paths"]

    def test_bench_step_is_non_blocking_and_respects_gate_factor(self):
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        bench_steps = [
            s for s in job["steps"] if "pytest -m bench" in str(s.get("run", ""))
        ]
        assert bench_steps, "no bench pytest step"
        step = bench_steps[0]
        assert step.get("continue-on-error") is True
        assert "REPRO_BENCH_GATE_FACTOR" in step.get("env", {})

    def test_artifact_upload_and_summary(self):
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        text = _steps_text(job)
        assert "actions/upload-artifact" in text
        assert "GITHUB_STEP_SUMMARY" in text
        uploads = [
            s for s in job["steps"] if "upload-artifact" in str(s.get("uses", ""))
        ]
        assert uploads[0]["with"]["path"] == "BENCH_fixpoint.json"

    def test_bitwise_parity_rerun_moved_to_nightly(self):
        # the full two-engine bitwise diff still runs — nightly, where its
        # 2x cost is acceptable — and stays blocking within bench.yml
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        parity_steps = [
            s
            for s in job["steps"]
            if "check_explorer_parity.py" in str(s.get("run", ""))
        ]
        assert parity_steps, "bench.yml lost the bitwise parity re-run"
        assert not parity_steps[0].get("continue-on-error")

    def test_fuzz_farm_job_runs_budgeted_on_fresh_seeds(self):
        # the nightly farm: fresh seed base per run (github.run_id), a
        # wall-clock budget so the job can never outgrow its timeout, and
        # the corpus/failure artifacts uploaded even when the farm fails
        data, _ = _load("bench.yml")
        job = data["jobs"]["fuzz"]
        text = _steps_text(job)
        assert "tools/run_fuzz_farm.py" in text
        assert "--budget-seconds" in text
        assert "github.run_id" in text
        assert isinstance(job.get("timeout-minutes"), int)
        uploads = [
            s for s in job["steps"] if "upload-artifact" in str(s.get("uses", ""))
        ]
        assert uploads and uploads[0].get("if") == "always()"
        assert "fuzz-artifacts" in str(uploads[0]["with"].get("path", ""))

    def test_bench_runs_emit_and_upload_certificates(self):
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        bench_steps = [
            s for s in job["steps"] if "pytest -m bench" in str(s.get("run", ""))
        ]
        cert_dir = bench_steps[0].get("env", {}).get("REPRO_BENCH_CERT_DIR")
        assert cert_dir, "bench step does not request certificate emission"
        uploads = [
            s for s in job["steps"] if "upload-artifact" in str(s.get("uses", ""))
        ]
        cert_uploads = [
            s for s in uploads if cert_dir in str(s["with"].get("path", ""))
        ]
        assert cert_uploads, "certificates are not uploaded as artifacts"
