"""Syntax/shape validation of the GitHub Actions workflows.

``act``/``actions/workflow`` are not available in the test container, so
this is the acceptance gate for ``.github/workflows/*.yml``: every file
must be parseable YAML with the job structure the repo's CI contract
promises (tier-1 + smoke + lint on pushes and PRs, the non-blocking bench
job on schedule/dispatch with the artifact upload and the
``REPRO_BENCH_GATE_FACTOR`` knob).
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

pytestmark = pytest.mark.smoke

WORKFLOWS = Path(__file__).resolve().parent.parent / ".github" / "workflows"


def _load(name):
    data = yaml.safe_load((WORKFLOWS / name).read_text())
    assert isinstance(data, dict), f"{name} did not parse to a mapping"
    # YAML 1.1 parses the bare key `on` as boolean True
    triggers = data.get("on", data.get(True))
    assert triggers is not None, f"{name} has no trigger block"
    return data, triggers


def _steps_text(job):
    return "\n".join(
        str(step.get("run", "")) + str(step.get("uses", ""))
        for step in job.get("steps", [])
    )


def test_workflow_files_exist():
    names = {p.name for p in WORKFLOWS.glob("*.yml")}
    assert {"ci.yml", "bench.yml"} <= names


def test_all_workflows_are_valid_yaml():
    for path in WORKFLOWS.glob("*.yml"):
        data, triggers = _load(path.name)
        assert data.get("jobs"), f"{path.name} defines no jobs"
        for job_name, job in data["jobs"].items():
            assert "runs-on" in job, f"{path.name}:{job_name} missing runs-on"
            assert job.get("steps"), f"{path.name}:{job_name} has no steps"


class TestCIWorkflow:
    def test_triggers_on_push_and_pr(self):
        _, triggers = _load("ci.yml")
        assert "push" in triggers and "pull_request" in triggers

    def test_tier1_job_runs_the_roadmap_command_on_the_python_matrix(self):
        data, _ = _load("ci.yml")
        tier1 = data["jobs"]["tier1"]
        versions = tier1["strategy"]["matrix"]["python-version"]
        assert "3.10" in versions and "3.12" in versions
        text = _steps_text(tier1)
        assert "PYTHONPATH=src python -m pytest -x -q" in text

    def test_smoke_job_runs_the_smoke_marker(self):
        data, _ = _load("ci.yml")
        assert "pytest -m smoke" in _steps_text(data["jobs"]["smoke"])

    def test_lint_job_runs_ruff(self):
        data, _ = _load("ci.yml")
        assert "ruff check" in _steps_text(data["jobs"]["lint"])

    def test_pip_caching_is_enabled(self):
        data, _ = _load("ci.yml")
        for job_name, job in data["jobs"].items():
            setup = [
                s for s in job["steps"] if "setup-python" in str(s.get("uses", ""))
            ]
            assert setup, f"{job_name} does not set up python"
            assert setup[0].get("with", {}).get("cache") == "pip", (
                f"{job_name} does not cache pip"
            )


class TestBenchWorkflow:
    def test_triggers_are_schedule_and_dispatch_only(self):
        _, triggers = _load("bench.yml")
        assert "schedule" in triggers and "workflow_dispatch" in triggers
        assert "push" not in triggers and "pull_request" not in triggers

    def test_bench_step_is_non_blocking_and_respects_gate_factor(self):
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        bench_steps = [
            s for s in job["steps"] if "pytest -m bench" in str(s.get("run", ""))
        ]
        assert bench_steps, "no bench pytest step"
        step = bench_steps[0]
        assert step.get("continue-on-error") is True
        assert "REPRO_BENCH_GATE_FACTOR" in step.get("env", {})

    def test_artifact_upload_and_summary(self):
        data, _ = _load("bench.yml")
        job = data["jobs"]["bench"]
        text = _steps_text(job)
        assert "actions/upload-artifact" in text
        assert "GITHUB_STEP_SUMMARY" in text
        uploads = [
            s for s in job["steps"] if "upload-artifact" in str(s.get("uses", ""))
        ]
        assert uploads[0]["with"]["path"] == "BENCH_fixpoint.json"
