"""Grammar-based random program generation + differential testing.

The generator now lives in :mod:`repro.fuzz.generators` (the farm drives
it at scale; these tests drive it deeply).  Each random program is pushed
through the whole stack and checked for internal consistency:

* the compiled PTS validates (exclusive + complete guards);
* the pretty-printer round-trips behaviourally;
* simulation statistics fall inside the value-iteration bracket;
* synthesized upper bounds dominate the bracket's lower edge.

The ``fractional`` and ``reject`` profiles — update constants with
denominators near the 1e6 lattice cap, and statements ``integrality()``
must refuse to scale — are exercised in ``tests/test_fuzz_generators.py``
(they are lattice stress tests, not pipeline tests).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.generators import ProgramGenerator
from repro.lang import compile_source, parse_program, pretty
from repro.pts import simulate, validate_pts
from repro.core import exp_lin_syn, value_iteration


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_pipeline(seed):
    rng = random.Random(seed)
    source = ProgramGenerator(rng).program()
    result = compile_source(source, name=f"rand{seed}")
    pts = result.pts

    report = validate_pts(pts)
    assert report.ok, f"{report.problems}\n{source}"

    # value iteration closes (fuel-bounded program)
    vi = value_iteration(pts, max_states=120_000)
    assert vi.tight, source
    vpf = 0.5 * (vi.lower + vi.upper)

    # simulation agrees within its confidence interval
    sim = simulate(pts, episodes=1200, seed=seed)
    lo, hi = sim.violation_interval()
    assert lo - 1e-9 <= vpf <= hi + 1e-9, source

    # the complete algorithm upper-bounds the truth, up to solver precision:
    # the convex solve can undershoot a certain violation (vpf = 1) by up to
    # ~1e-8 (seed 1760 yields bound = 1 - 9.99e-9), so the slack must sit
    # above solver tolerance, not at the value-iteration tolerance
    cert = exp_lin_syn(pts)
    assert cert.bound >= vpf - 1e-7, source


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_pretty_roundtrip(seed):
    rng = random.Random(seed)
    source = ProgramGenerator(rng).program()
    text = pretty(parse_program(source))
    a = compile_source(source, name="orig").pts
    b = compile_source(text, name="rt").pts
    ra = simulate(a, episodes=600, seed=7)
    rb = simulate(b, episodes=600, seed=7)
    assert ra.violations == rb.violations
    assert ra.total_steps == rb.total_steps
