"""Grammar-based random program generation + differential testing.

A small random program generator produces syntactically valid surface
programs; each one is pushed through the whole stack and checked for
internal consistency:

* the compiled PTS validates (exclusive + complete guards);
* the pretty-printer round-trips behaviourally;
* simulation statistics fall inside the value-iteration bracket;
* synthesized upper bounds dominate the bracket's lower edge.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang import compile_source, parse_program, pretty
from repro.pts import simulate, validate_pts
from repro.core import exp_lin_syn, value_iteration


class ProgramGenerator:
    """Generates random bounded probabilistic programs.

    All loops are bounded by a fuel variable so value iteration terminates;
    probabilities are multiples of 1/8; updates are small integer shifts.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.variables = ["a", "b"]

    def expr(self, variable: str) -> str:
        shift = self.rng.randint(-2, 3)
        sign = "+" if shift >= 0 else "-"
        return f"{variable} {sign} {abs(shift)}"

    def assignment(self, indent: str) -> str:
        v = self.rng.choice(self.variables)
        return f"{indent}{v} := {self.expr(v)}"

    def prob_branch(self, indent: str, depth: int) -> str:
        eighths = self.rng.randint(1, 7)
        body1 = self.block(indent + "    ", depth - 1)
        body2 = self.block(indent + "    ", depth - 1)
        return (
            f"{indent}if prob({eighths}/8):\n{body1}\n{indent}else:\n{body2}"
        )

    def switch(self, indent: str) -> str:
        lines = [f"{indent}switch:"]
        for p, shift in ((4, 1), (4, -1)):
            v = self.rng.choice(self.variables)
            lines.append(f"{indent}    prob({p}/8): {v} := {v} + {shift}")
        return "\n".join(lines)

    def block(self, indent: str, depth: int) -> str:
        choices = [self.assignment, self.switch]
        if depth > 0:
            choices.append(lambda ind: self.prob_branch(ind, depth))
        picked = self.rng.choice(choices)
        return picked(indent)

    def program(self) -> str:
        fuel = self.rng.randint(4, 10)
        threshold = self.rng.randint(0, 4)
        body = self.block("    ", depth=2)
        comparison = self.rng.choice(["<=", ">="])
        return (
            "a := 0\n"
            "b := 0\n"
            "fuel := 0\n"
            f"while fuel <= {fuel}:\n"
            f"{body}\n"
            "    fuel := fuel + 1\n"
            f"assert a {comparison} {threshold}"
        )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_pipeline(seed):
    rng = random.Random(seed)
    source = ProgramGenerator(rng).program()
    result = compile_source(source, name=f"rand{seed}")
    pts = result.pts

    report = validate_pts(pts)
    assert report.ok, f"{report.problems}\n{source}"

    # value iteration closes (fuel-bounded program)
    vi = value_iteration(pts, max_states=120_000)
    assert vi.tight, source
    vpf = 0.5 * (vi.lower + vi.upper)

    # simulation agrees within its confidence interval
    sim = simulate(pts, episodes=1200, seed=seed)
    lo, hi = sim.violation_interval()
    assert lo - 1e-9 <= vpf <= hi + 1e-9, source

    # the complete algorithm upper-bounds the truth, up to solver precision:
    # the convex solve can undershoot a certain violation (vpf = 1) by up to
    # ~1e-8 (seed 1760 yields bound = 1 - 9.99e-9), so the slack must sit
    # above solver tolerance, not at the value-iteration tolerance
    cert = exp_lin_syn(pts)
    assert cert.bound >= vpf - 1e-7, source


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_pretty_roundtrip(seed):
    rng = random.Random(seed)
    source = ProgramGenerator(rng).program()
    text = pretty(parse_program(source))
    a = compile_source(source, name="orig").pts
    b = compile_source(text, name="rt").pts
    ra = simulate(a, episodes=600, seed=7)
    rb = simulate(b, episodes=600, seed=7)
    assert ra.violations == rb.violations
    assert ra.total_steps == rb.total_steps
