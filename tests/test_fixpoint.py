"""Tests for value iteration (Theorems 4.2/4.3/4.4 made computational)."""

import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.core.fixpoint import exact_vpf, value_iteration

COIN = """
x := 0
if prob(0.25):
    x := 1
assert x <= 0
"""

GAMBLER = """
x := 3
while x >= 1 and x <= 9:
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 1
assert x <= 0
"""

ASYM = """
x := 0
t := 0
while x <= 19:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
assert t <= 60
"""


class TestValueIteration:
    def test_coin_flip_exact(self):
        pts = compile_source(COIN, name="coin").pts
        result = value_iteration(pts)
        assert result.tight
        assert result.lower == pytest.approx(0.25, abs=1e-9)
        assert not result.truncated

    def test_gambler_ruin_closed_form(self):
        # symmetric walk from 3 absorbing at 0 and 10: the assertion
        # (x <= 0) fails exactly when the walk hits 10 first: Pr = 3/10
        pts = compile_source(GAMBLER, name="gambler").pts
        result = value_iteration(pts)
        assert result.tight
        assert result.lower == pytest.approx(0.3, abs=1e-8)

    def test_bracket_contains_simulation(self):
        from repro.pts import simulate

        pts = compile_source(ASYM, name="asym").pts
        result = value_iteration(pts, max_states=100_000)
        sim = simulate(pts, episodes=4000, seed=3)
        lo, hi = sim.violation_interval()
        assert result.upper >= lo - 1e-9
        assert result.lower <= hi + 1e-9

    def test_truncation_widens_but_stays_sound(self):
        pts = compile_source(ASYM, name="asym").pts
        full = value_iteration(pts, max_states=100_000)
        small = value_iteration(pts, max_states=500)
        assert small.truncated
        assert small.lower <= full.lower + 1e-9
        assert small.upper >= full.upper - 1e-9
        assert small.contains(0.5 * (full.lower + full.upper))

    def test_exact_vpf_requires_closed_bracket(self):
        pts = compile_source(ASYM, name="asym").pts
        with pytest.raises(ModelError):
            exact_vpf(pts, max_states=50)

    def test_exact_vpf(self):
        pts = compile_source(COIN, name="coin").pts
        assert exact_vpf(pts) == pytest.approx(0.25, abs=1e-9)

    def test_continuous_sampling_rejected(self):
        src = "r ~ uniform(0, 1)\nx := 0\nx := x + r\nassert x <= 2"
        pts = compile_source(src, name="cont").pts
        with pytest.raises(ModelError):
            value_iteration(pts)

    def test_monotone_bracket(self):
        pts = compile_source(GAMBLER, name="gambler").pts
        r = value_iteration(pts)
        assert 0.0 <= r.lower <= r.upper <= 1.0
