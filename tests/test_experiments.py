"""Tests for the experiment harness (table regeneration machinery)."""

import math

import pytest

from repro.experiments import (
    TABLE1,
    TABLE2,
    TABLE1_SPECS,
    TABLE2_SPECS,
    format_table1,
    format_table2,
    format_symbolic,
    ln_to_log10,
    log10_to_ln,
    run_row,
    run_row2,
)
from repro.experiments.symbolic_tables import run_symbolic_tables


class TestReferenceData:
    def test_table1_has_27_rows(self):
        assert len(TABLE1) == 27

    def test_table2_has_9_rows(self):
        assert len(TABLE2) == 9

    def test_every_spec_has_a_reference_row(self):
        for name, _, label in TABLE1_SPECS:
            assert (name, label) in TABLE1
        for name, _, label in TABLE2_SPECS:
            assert (name, label) in TABLE2

    def test_sec52_always_at_most_sec51(self):
        # the paper's core claim, encoded in its own numbers
        for row in TABLE1.values():
            if row.sec51_log10 is not None and row.sec52_log10 is not None:
                assert row.sec52_log10 <= row.sec51_log10 + 1e-9

    def test_sec52_always_beats_previous(self):
        for row in TABLE1.values():
            if row.previous_log10 is not None and row.sec52_log10 is not None:
                assert row.sec52_log10 <= row.previous_log10 + 1e-9

    def test_log10_ln_roundtrip(self):
        assert ln_to_log10(log10_to_ln(-3.5)) == pytest.approx(-3.5)
        assert log10_to_ln(None) is None
        assert ln_to_log10(None) is None


class TestRunRow:
    def test_race_row_end_to_end(self):
        row = run_row("Race", dict(x0=40, y0=0), "(40,0)")
        assert row.family == "StoInv"
        assert row.sec52_ln == pytest.approx(math.log(1.52e-7), abs=0.05)
        assert row.sec51_ln is not None and row.sec51_ln <= 0.0
        assert row.baseline_ln is not None
        assert row.ratio_log10 is not None and row.ratio_log10 > 0
        assert not row.error

    def test_row_without_optional_columns(self):
        row = run_row(
            "Race", dict(x0=40, y0=0), "(40,0)", with_hoeffding=False, with_baseline=False
        )
        assert row.sec51_ln is None and row.baseline_ln is None
        assert row.ratio_log10 is None

    def test_format_table1_renders(self):
        row = run_row(
            "Race", dict(x0=40, y0=0), "(40,0)", with_hoeffding=False, with_baseline=False
        )
        text = format_table1([row])
        assert "Race" in text and "(40,0)" in text
        assert "1.52e-007" in text

    def test_hardware_row_end_to_end(self):
        row = run_row2("M1DWalk", dict(p="1e-4"), "p=1e-4")
        assert row.bound == pytest.approx(0.984, abs=0.01)
        assert row.failure_ratio_vs_paper is not None
        text = format_table2([row])
        assert "M1DWalk" in text and "0.984" in text


class TestSymbolic:
    def test_one_row_per_table(self):
        rows = run_symbolic_tables(
            specs1=[("Race", dict(x0=40, y0=0), "(40,0)")],
            specs2=[("M1DWalk", dict(p="1e-4"), "p=1e-4")],
        )
        tables = sorted(r.table for r in rows)
        assert tables == ["3", "4", "5"]
        text = format_symbolic(rows)
        assert "Race" in text and "M1DWalk" in text
        assert "exp(" in text
