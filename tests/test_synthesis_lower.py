"""End-to-end tests for ExpLowSyn (Section 6) and termination proofs."""

import math

import pytest

from repro.errors import SynthesisError
from repro.lang import compile_source
from repro.core import exp_low_syn, prove_almost_sure_termination, value_iteration


def unreliable_walk(p: str) -> str:
    return f"""
const p = {p}
x := 1
while x <= 99:
    switch:
        prob(p): exit
        prob(0.75 * (1 - p)): x := x + 1
        prob(0.25 * (1 - p)): x := x - 1
assert false
"""


@pytest.fixture(scope="module")
def walk_pts():
    return compile_source(unreliable_walk("1e-4"), name="m1dwalk").pts


class TestTermination:
    def test_rsm_found_for_drifting_walk(self, walk_pts):
        cert = prove_almost_sure_termination(walk_pts)
        assert cert.rho is not None
        init = {k: float(v) for k, v in walk_pts.init_valuation.items()}
        assert cert.rank(walk_pts.init_location, init) >= 0

    def test_rsm_checked_on_trajectories(self, walk_pts):
        cert = prove_almost_sure_termination(walk_pts)
        assert cert.check_on_trajectories(walk_pts, episodes=40)

    def test_rank_zero_at_sinks(self, walk_pts):
        cert = prove_almost_sure_termination(walk_pts)
        assert cert.rank(walk_pts.term_location, {}) == 0.0

    def test_diverging_program_rejected(self):
        # deterministic divergence: no ranking supermartingale can exist
        src = "x := 0\nwhile x >= 0:\n  x := x + 1\nassert false"
        pts = compile_source(src, name="diverge").pts
        with pytest.raises(SynthesisError):
            prove_almost_sure_termination(pts)


class TestExpLowSyn:
    def test_paper_value_p_1e4(self, walk_pts):
        cert = exp_low_syn(walk_pts)
        # paper Table 2, M1DWalk p = 1e-4: 0.984126
        assert cert.bound == pytest.approx(0.984, abs=0.005)

    def test_below_true_probability(self, walk_pts):
        cert = exp_low_syn(walk_pts)
        vi = value_iteration(walk_pts, max_states=4000)
        assert cert.bound <= vi.upper + 1e-9

    def test_certificate_verifies(self, walk_pts):
        exp_low_syn(walk_pts).verify()

    def test_termination_certificate_attached(self, walk_pts):
        cert = exp_low_syn(walk_pts)
        assert cert.termination_certificate is not None

    def test_assume_termination_skips_proof(self, walk_pts):
        cert = exp_low_syn(walk_pts, assume_termination=True)
        assert cert.termination_certificate is None
        assert cert.bound > 0.9

    def test_smaller_failure_rate_gives_larger_bound(self):
        small = exp_low_syn(compile_source(unreliable_walk("1e-7"), name="a").pts)
        large = exp_low_syn(compile_source(unreliable_walk("1e-4"), name="b").pts)
        assert small.bound > large.bound

    def test_paper_value_p_1e7(self):
        cert = exp_low_syn(compile_source(unreliable_walk("1e-7"), name="w7").pts)
        # paper Table 2: 0.999984; Section 3.3 derivation gives exp(-1.98e-5)
        assert cert.bound == pytest.approx(math.exp(-1.98e-5), rel=1e-4)

    def test_certain_violation_lower_bound_near_one(self):
        src = "x := 0\nx := x + 1\nassert false"
        pts = compile_source(src, name="sure").pts
        cert = exp_low_syn(pts)
        assert cert.bound == pytest.approx(1.0, abs=1e-6)

    def test_all_mass_to_termination_rejected(self):
        src = "x := 0\nexit\nassert false"
        pts = compile_source(src, name="never").pts
        with pytest.raises(SynthesisError):
            exp_low_syn(pts)

    def test_lower_at_most_upper(self, walk_pts):
        from repro.core import exp_lin_syn

        lower = exp_low_syn(walk_pts)
        upper = exp_lin_syn(walk_pts)
        assert lower.log_bound <= upper.log_bound + 1e-9

    def test_bound_m_recorded(self, walk_pts):
        cert = exp_low_syn(walk_pts)
        assert cert.bound_m >= 1.0
