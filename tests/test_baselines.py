"""Tests for the prior-work baselines ([CS13], [CFNH18], [CNZ17])."""

import math

import pytest

from repro.core import (
    cfnh18_concentration_bound,
    cs13_deviation_bound,
    synthesize_bounded_rsm,
)
from repro.core.baselines import BoundedRSM
from repro.programs import get_benchmark


class TestCS13:
    def test_matches_paper_rdadder_column(self):
        # [CS13] previous results in Table 1: 8.00e-2 / 4.54e-5 / 1.69e-10
        for d, paper in [(25, 8.00e-2), (50, 4.54e-5), (75, 1.69e-10)]:
            ours = math.exp(cs13_deviation_bound(500, d, 1.0))
            assert ours == pytest.approx(paper, rel=0.05)

    def test_matches_paper_robot_column(self):
        for d, paper in [(1.8, 2.04e-5), (2.0, 1.62e-6), (2.2, 9.85e-8)]:
            ours = math.exp(cs13_deviation_bound(60, d, 0.1))
            assert ours == pytest.approx(paper, rel=0.05)

    def test_trivial_for_nonpositive_deviation(self):
        assert cs13_deviation_bound(100, 0.0) == 0.0
        assert cs13_deviation_bound(100, -1.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cs13_deviation_bound(0, 5.0)
        with pytest.raises(ValueError):
            cs13_deviation_bound(10, 5.0, 0.0)

    def test_monotone_in_deviation(self):
        assert cs13_deviation_bound(100, 10) > cs13_deviation_bound(100, 20)


class TestCFNH18:
    def test_trivial_before_drift_overcomes_rank(self):
        rsm = BoundedRSM(rho0=100.0, c=1.0)
        assert cfnh18_concentration_bound(rsm, 50.0) == 0.0

    def test_decreasing_in_n(self):
        rsm = BoundedRSM(rho0=100.0, c=1.0)
        b1 = cfnh18_concentration_bound(rsm, 200.0)
        b2 = cfnh18_concentration_bound(rsm, 400.0)
        assert b2 < b1 < 0.0

    def test_formula(self):
        rsm = BoundedRSM(rho0=0.0, c=1.0, eps=1.0)
        # exp(-(n)^2 / (2 n (2)^2)) = exp(-n / 8)
        assert cfnh18_concentration_bound(rsm, 80.0) == pytest.approx(-10.0)


class TestBoundedRSMSynthesis:
    def test_rdwalk_rsm(self):
        inst = get_benchmark("Rdwalk", n=400)
        rsm = synthesize_bounded_rsm(inst.pts, inst.invariants)
        assert rsm.rho0 >= 0.0
        assert rsm.c >= 1.0
        # the drift-1/2 walk over 100 positions has rank about 200 after
        # normalizing the expected decrease to 1
        assert rsm.rho0 < 1000.0

    def test_baseline_bound_is_looser_than_sec52(self):
        from repro.core import cfnh18_best_bound, exp_lin_syn

        inst = get_benchmark("Rdwalk", n=400)
        baseline = cfnh18_best_bound(inst.pts, inst.invariants, 400.0)
        ours = exp_lin_syn(inst.pts, inst.invariants).log_bound
        assert ours <= baseline + 1e-9
        assert baseline < 0.0  # the baseline is still informative

    def test_c_cap_trades_difference_for_rank(self):
        inst = get_benchmark("Rdwalk", n=400)
        capped = synthesize_bounded_rsm(inst.pts, inst.invariants, c_cap=2.0)
        assert capped.c <= 2.0 + 1e-6
        # with budget c <= 2 the x-based rank (rho_0 ~ 202) is optimal,
        # unlike the useless time-based rank (rho_0 = 402)
        assert capped.rho0 < 400.0
