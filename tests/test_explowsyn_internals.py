"""Targeted tests for ExpLowSyn internals (Section 6)."""

import math
from fractions import Fraction

import pytest

from repro.errors import SynthesisError
from repro.lang import compile_source
from repro.polyhedra.farkas import FarkasEncoder
from repro.core import exp_low_syn, generate_interval_invariants
from repro.core.canonical import canonicalize
from repro.core.explowsyn import _jensen_strengthen
from repro.core.templates import ExpTemplate


def walk(p="1e-4"):
    src = f"""
const p = {p}
x := 1
while x <= 99:
    switch:
        prob(p): exit
        prob(0.75 * (1 - p)): x := x + 1
        prob(0.25 * (1 - p)): x := x - 1
assert false
"""
    return compile_source(src, name="walk").pts


class TestJensenStrengthen:
    def test_produces_linear_farkas_rows(self):
        pts = walk()
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        encoder = FarkasEncoder()
        loop_con = [c for c in cons if len(c.terms) >= 2][0]
        rows = _jensen_strengthen(loop_con, pts, encoder)
        assert rows
        # every row is affine over unknowns + multipliers (TemplateConstraint)
        for r in rows:
            assert r.relation in ("<=", "==")

    def test_dropped_mass_enters_ln_q(self):
        pts = walk("0.01")
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        loop_con = [c for c in cons if c.dropped_probability > 0][0]
        assert loop_con.dropped_probability == Fraction(1, 100)

    def test_all_mass_to_term_raises(self):
        pts = compile_source("x := 0\nexit\nassert false", name="never").pts
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        encoder = FarkasEncoder()
        empty = [c for c in cons if not c.terms]
        assert empty
        with pytest.raises(SynthesisError):
            _jensen_strengthen(empty[0], pts, encoder)


class TestJensenExactness:
    def test_deterministic_chain_is_lossless(self):
        """With a single kept fork per transition, Jensen's inequality is an
        equality, so the lower bound equals the exact survival probability."""
        length, p = 30, 0.002
        src = f"""
const p = {p}
i := 0
while i <= {length - 1}:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""
        pts = compile_source(src, name="chain").pts
        cert = exp_low_syn(pts)
        assert cert.bound == pytest.approx((1 - p) ** length, rel=1e-9)

    def test_branching_walk_is_conservative(self):
        """With genuinely branching forks Jensen is strict: the bound is
        below the exact probability but not by much on M1DWalk."""
        from repro.core import value_iteration

        pts = walk("1e-3")
        cert = exp_low_syn(pts)
        vi = value_iteration(pts, max_states=3000)
        assert cert.bound <= vi.upper + 1e-9
        assert cert.bound >= vi.upper - 0.15


class TestBoundedness:
    def test_m_at_least_one(self):
        pts = walk()
        cert = exp_low_syn(pts)
        assert cert.bound_m >= 1.0

    def test_exponent_below_m_on_samples(self):
        import random

        from repro.core.certificates import sample_psi_points

        pts = walk()
        cert = exp_low_syn(pts)
        rng = random.Random(0)
        log_m = math.log(cert.bound_m)
        for loc in cert.state_function.coeffs:
            inv = cert.invariants.of(loc)
            for point in sample_psi_points(inv, rng, count=6):
                assert cert.state_function.exponent(loc, point) <= log_m + 1e-6
