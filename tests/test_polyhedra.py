"""Tests for affine inequalities and H-representation polyhedra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.polyhedra import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import var


class TestAffineIneq:
    def test_le(self):
        ineq = AffineIneq.le(var("x"), 5)
        assert ineq.holds({"x": 5})
        assert not ineq.holds({"x": 6})

    def test_ge(self):
        ineq = AffineIneq.ge(var("x"), 5)
        assert ineq.holds({"x": 5})
        assert not ineq.holds({"x": 4})

    def test_eq_pair(self):
        lo, hi = AffineIneq.eq_pair(var("x"), 2)
        assert lo.holds({"x": 2}) and hi.holds({"x": 2})
        assert not (lo.holds({"x": 3}) and hi.holds({"x": 3}))
        assert not (lo.holds({"x": 1}) and hi.holds({"x": 1}))

    def test_negate_strict_real(self):
        ineq = AffineIneq.le(var("x"), 5)
        neg = ineq.negate_strict()
        assert neg.holds({"x": 5})  # closed complement overlaps at boundary
        assert neg.holds({"x": 6})
        assert not neg.holds({"x": 4})

    def test_negate_strict_integer_gap(self):
        ineq = AffineIneq.le(var("x"), 5)
        neg = ineq.negate_strict(Fraction(1))
        assert not neg.holds({"x": 5})
        assert neg.holds({"x": 6})

    def test_holds_float(self):
        ineq = AffineIneq.le(var("x"), 1)
        assert ineq.holds_float({"x": 1.0 + 1e-12})

    def test_str(self):
        assert "<=" in str(AffineIneq.le(var("x"), 1))


class TestPolyhedronBasics:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ModelError):
            Polyhedron(["x", "x"])

    def test_foreign_constraint_rejected(self):
        with pytest.raises(ModelError):
            Polyhedron(["x"], [AffineIneq.le(var("y"), 0)])

    def test_universe_contains_everything(self):
        u = Polyhedron.universe(["x", "y"])
        assert u.contains({"x": 1000, "y": -1000})
        assert not u.is_empty()

    def test_from_box(self):
        p = Polyhedron.from_box({"x": (0, 10)})
        assert p.contains({"x": 0}) and p.contains({"x": 10})
        assert not p.contains({"x": 11}) and not p.contains({"x": -1})

    def test_from_box_open_sides(self):
        p = Polyhedron.from_box({"x": (None, 10)})
        assert p.contains({"x": -(10**9)})

    def test_with_variables_embedding(self):
        p = Polyhedron.from_box({"x": (0, 1)}).with_variables(["x", "y"])
        assert p.variables == ("x", "y")

    def test_with_variables_cannot_drop(self):
        p = Polyhedron.from_box({"x": (0, 1)})
        with pytest.raises(ModelError):
            p.with_variables(["y"])

    def test_intersect_merges_vars(self):
        a = Polyhedron.from_box({"x": (0, 10)})
        b = Polyhedron.from_box({"y": (0, 5)})
        c = a.intersect(b)
        assert set(c.variables) == {"x", "y"}
        assert c.contains({"x": 1, "y": 1})
        assert not c.contains({"x": 1, "y": 6})

    def test_matrix_form(self):
        p = Polyhedron(["x", "y"], [AffineIneq.le(var("x") + var("y") * 2, 3)])
        m, d = p.matrix_form()
        assert m == [[Fraction(1), Fraction(2)]]
        assert d == [Fraction(3)]

    def test_recession_cone_drops_constants(self):
        p = Polyhedron.from_box({"x": (None, 99)})
        cone = p.recession_cone()
        assert cone.contains({"x": -5})
        assert not cone.contains({"x": 5})
        assert cone.contains({"x": 0})


class TestPolyhedronLPQueries:
    def test_is_empty_true(self):
        assert Polyhedron.from_box({"x": (5, 3)}).is_empty()

    def test_is_empty_false(self):
        assert not Polyhedron.from_box({"x": (3, 5)}).is_empty()

    def test_maximize_optimal(self):
        p = Polyhedron.from_box({"x": (0, 10)})
        status, value = p.maximize(var("x") * 2 + 1)
        assert status == "optimal"
        assert value == pytest.approx(21.0)

    def test_maximize_unbounded(self):
        p = Polyhedron.from_box({"x": (0, None)})
        status, _ = p.maximize(var("x"))
        assert status == "unbounded"

    def test_implies(self):
        p = Polyhedron.from_box({"x": (0, 10)})
        assert p.implies(AffineIneq.le(var("x"), 10))
        assert p.implies(AffineIneq.le(var("x"), 12))
        assert not p.implies(AffineIneq.le(var("x"), 9))

    def test_empty_implies_everything(self):
        p = Polyhedron.from_box({"x": (5, 3)})
        assert p.implies(AffineIneq.le(var("x"), -100))

    def test_is_bounded(self):
        assert Polyhedron.from_box({"x": (0, 1), "y": (0, 1)}).is_bounded()
        assert not Polyhedron.from_box({"x": (0, None)}).is_bounded()
        assert Polyhedron.from_box({"x": (5, 3)}).is_bounded()  # empty

    def test_sample_point(self):
        p = Polyhedron.from_box({"x": (2, 4)})
        pt = p.chebyshev_like_point()
        assert pt is not None and 2 - 1e-9 <= pt["x"] <= 4 + 1e-9

    def test_sample_point_empty(self):
        assert Polyhedron.from_box({"x": (5, 3)}).chebyshev_like_point() is None


@settings(max_examples=30, deadline=None)
@given(
    lo=st.integers(min_value=-5, max_value=5),
    width=st.integers(min_value=0, max_value=10),
    x=st.integers(min_value=-20, max_value=20),
)
def test_box_membership_matches_interval(lo, width, x):
    p = Polyhedron.from_box({"x": (lo, lo + width)})
    assert p.contains({"x": x}) == (lo <= x <= lo + width)
