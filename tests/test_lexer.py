"""Tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind in ("NAME", "NUMBER", "OP", "KEYWORD")]


class TestBasics:
    def test_empty(self):
        assert kinds("") == ["EOF"]

    def test_assignment(self):
        toks = tokenize("x := 40")
        assert [t.kind for t in toks] == ["NAME", "OP", "NUMBER", "NEWLINE", "EOF"]

    def test_keywords_recognized(self):
        toks = tokenize("while if else prob assert exit skip")
        assert all(t.kind == "KEYWORD" for t in toks[:-2])

    def test_comment_stripped(self):
        assert texts("x := 1  # a comment") == ["x", ":=", "1"]

    def test_comment_only_line_skipped(self):
        assert kinds("# nothing\nx := 1") == ["NAME", "OP", "NUMBER", "NEWLINE", "EOF"]

    def test_blank_lines_skipped(self):
        assert kinds("\n\nx := 1\n\n") == ["NAME", "OP", "NUMBER", "NEWLINE", "EOF"]

    def test_operators_maximal_munch(self):
        assert texts("x <= 1") == ["x", "<=", "1"]
        assert texts("x < = 1") == ["x", "<", "=", "1"]
        assert texts("x := y") == ["x", ":=", "y"]

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("x @ y")


class TestNumbers:
    def test_integer(self):
        assert texts("42") == ["42"]

    def test_decimal(self):
        assert texts("0.75") == ["0.75"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_scientific(self):
        assert texts("1e-7") == ["1e-7"]
        assert texts("2.5E+3") == ["2.5E+3"]

    def test_e_not_followed_by_digit_is_name(self):
        # "1e" alone: the 'e' is a trailing name, not an exponent
        assert texts("1e + x") == ["1", "e", "+", "x"]


class TestIndentation:
    def test_indent_dedent_emitted(self):
        src = "while x <= 1:\n    x := x + 1\ny := 2"
        ks = kinds(src)
        assert "INDENT" in ks and "DEDENT" in ks
        assert ks.index("INDENT") < ks.index("DEDENT")

    def test_nested_blocks(self):
        src = "while a <= 1:\n  while b <= 1:\n    c := 1\nd := 2"
        ks = kinds(src)
        assert ks.count("INDENT") == 2 and ks.count("DEDENT") == 2

    def test_final_dedents_emitted(self):
        src = "while a <= 1:\n  b := 1"
        ks = kinds(src)
        assert ks.count("INDENT") == ks.count("DEDENT") == 1
        assert ks[-1] == "EOF"

    def test_inconsistent_dedent(self):
        src = "while a <= 1:\n    b := 1\n  c := 2"
        with pytest.raises(ParseError):
            tokenize(src)

    def test_positions_recorded(self):
        tok = tokenize("x := 1")[0]
        assert (tok.line, tok.column) == (1, 1)
