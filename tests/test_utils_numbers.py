"""Tests for exact rational helpers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.numbers import as_fraction, fraction_gcd, is_integral, normalize_row


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert as_fraction(f) is f

    def test_decimal_float_uses_repr(self):
        assert as_fraction(0.1) == Fraction(1, 10)
        assert as_fraction(0.75) == Fraction(3, 4)

    def test_string(self):
        assert as_fraction("3/4") == Fraction(3, 4)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_float_roundtrip(self, x):
        assert float(as_fraction(x)) == x


class TestFractionGcd:
    def test_all_zero(self):
        assert fraction_gcd([Fraction(0), Fraction(0)]) == 0

    def test_integers(self):
        assert fraction_gcd([Fraction(4), Fraction(6)]) == 2

    def test_fractions(self):
        assert fraction_gcd([Fraction(1, 2), Fraction(1, 3)]) == Fraction(1, 6)

    def test_sign_insensitive(self):
        assert fraction_gcd([Fraction(-4), Fraction(6)]) == 2

    @given(st.lists(st.fractions(max_denominator=50), min_size=1, max_size=5))
    def test_gcd_divides_all(self, values):
        g = fraction_gcd(values)
        if g == 0:
            assert all(v == 0 for v in values)
        else:
            for v in values:
                assert (v / g).denominator == 1


class TestNormalizeRow:
    def test_zero_row(self):
        row = [Fraction(0), Fraction(0)]
        assert normalize_row(row) == row

    def test_direction_preserved(self):
        row = [Fraction(-2), Fraction(4)]
        assert normalize_row(row) == [Fraction(-1), Fraction(2)]

    @given(st.lists(st.fractions(max_denominator=20), min_size=1, max_size=4))
    def test_normalized_is_integral_with_gcd_one(self, row):
        out = normalize_row(row)
        if any(v != 0 for v in row):
            assert all(v.denominator == 1 for v in out)
            assert fraction_gcd(out) == 1


def test_is_integral():
    assert is_integral(Fraction(4))
    assert not is_integral(Fraction(1, 2))
