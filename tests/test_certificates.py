"""Tests for certificate objects and independent verification."""

import math
import random

import pytest

from repro.errors import VerificationError
from repro.lang import compile_source
from repro.polyhedra import Polyhedron
from repro.core import (
    InvariantMap,
    exp_lin_syn,
    exp_low_syn,
    generate_interval_invariants,
    log_ptf_transition,
    sample_psi_points,
)
from repro.core.templates import ExpTemplate

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""


@pytest.fixture(scope="module")
def race():
    pts = compile_source(RACE, name="race").pts
    return pts, generate_interval_invariants(pts)


class TestLogPtf:
    def test_matches_manual_expectation(self, race):
        pts, inv = race
        template = ExpTemplate(pts)
        head = pts.init_location
        sf = template.instantiate(
            {template.a_name(head, "x"): -1.0, template.b_name(head): 0.0}
        )
        loop = [t for t in pts.transitions_from(head) if len(t.forks) == 2][0]
        got = log_ptf_transition(pts, sf, loop, {"x": 50.0, "y": 0.0})
        # both forks move x to 51: 0.5 e^{-51} + 0.5 e^{-51} = e^{-51}
        assert got == pytest.approx(-51.0)

    def test_fail_fork_contributes_probability(self, race):
        pts, inv = race
        sf = ExpTemplate(pts).instantiate({})
        fail_t = [
            t
            for t in pts.transitions
            if any(f.destination == pts.fail_location for f in t.forks)
        ][0]
        got = log_ptf_transition(pts, sf, fail_t, {"x": 50.0, "y": 100.0})
        assert got == pytest.approx(0.0)  # probability 1 into fail

    def test_term_fork_contributes_nothing(self, race):
        pts, inv = race
        sf = ExpTemplate(pts).instantiate({})
        term_t = [
            t
            for t in pts.transitions
            if all(f.destination == pts.term_location for f in t.forks)
        ][0]
        assert log_ptf_transition(pts, sf, term_t, {"x": 100.0, "y": 0.0}) == float(
            "-inf"
        )


class TestSamplePsiPoints:
    def test_includes_vertices(self):
        poly = Polyhedron.from_box({"x": (0, 10)})
        points = sample_psi_points(poly, random.Random(0), count=4)
        xs = sorted(p["x"] for p in points)
        assert xs[0] == pytest.approx(0.0)
        assert any(abs(x - 10.0) < 1e-9 for x in xs)

    def test_unbounded_directions_sampled(self):
        poly = Polyhedron.from_box({"x": (0, None)})
        points = sample_psi_points(poly, random.Random(0), count=20)
        assert max(p["x"] for p in points) > 10.0

    def test_empty_polyhedron(self):
        poly = Polyhedron.from_box({"x": (3, 1)})
        assert sample_psi_points(poly, random.Random(0)) == []

    def test_all_points_inside(self):
        poly = Polyhedron.from_box({"x": (0, 5), "y": (-2, 2)})
        for p in sample_psi_points(poly, random.Random(1), count=16):
            assert poly.contains_float(p, tol=1e-6)


class TestCertificateAPI:
    def test_bound_properties(self, race):
        pts, inv = race
        cert = exp_lin_syn(pts, inv)
        assert 0.0 < cert.bound < 1.0
        assert math.log(cert.bound) == pytest.approx(cert.log_bound, abs=1e-9)
        assert "e-07" in cert.bound_str
        assert "explinsyn" in repr(cert)

    def test_render_template_per_location(self, race):
        pts, inv = race
        cert = exp_lin_syn(pts, inv)
        rendered = cert.render_template()
        assert set(rendered) == set(cert.state_function.coeffs)
        assert all(v.startswith("exp(") for v in rendered.values())

    def test_log_space_bound_str_below_double_range(self):
        from repro.programs import get_benchmark

        inst = get_benchmark("2DWalk", x0=1000, y0=10)
        cert = exp_lin_syn(inst.pts, inst.invariants)
        assert cert.bound == 0.0  # ~1e-570 underflows doubles
        assert "e-5" in cert.bound_str  # but prints exactly in log form


class TestVerificationCatchesBadCertificates:
    def test_tampered_upper_bound_rejected(self, race):
        pts, inv = race
        cert = exp_lin_syn(pts, inv)
        head = pts.init_location
        # tamper: flip the sign of the x coefficient
        cert.state_function.coeffs[head]["x"] *= -1.0
        with pytest.raises(VerificationError):
            cert.verify()

    def test_tampered_lower_bound_rejected(self):
        from repro.programs import get_benchmark

        inst = get_benchmark("M1DWalk", p="1e-4")
        cert = exp_low_syn(inst.pts, inst.invariants)
        loc = next(iter(cert.state_function.coeffs))
        cert.state_function.consts[loc] += 1.0  # inflate theta
        with pytest.raises(VerificationError):
            cert.verify()

    def test_lower_bound_above_one_rejected(self):
        from repro.programs import get_benchmark

        inst = get_benchmark("M1DWalk", p="1e-4")
        cert = exp_low_syn(inst.pts, inst.invariants)
        cert.log_bound = 0.5  # claims probability e^0.5 > 1
        with pytest.raises(VerificationError):
            cert.verify()

    def test_wrong_invariant_detected_by_fixed_point_check(self, race):
        pts, _ = race
        cert = exp_lin_syn(pts)
        # weaken to universe invariants: the pre fixed-point must still hold
        # everywhere the guard allows; the certificate was synthesized for a
        # *smaller* premise, so checking on the universe may fail — the
        # verifier must at least not crash and must stay deterministic
        cert.invariants = InvariantMap(pts)
        try:
            cert.verify()
        except VerificationError:
            pass  # acceptable: wider premise than the certificate supports
