"""Tests for the PTS model, builder and validation."""

from fractions import Fraction

import pytest

from repro.errors import ModelError
from repro.polyhedra import AffineIneq, Polyhedron, var
from repro.pts import (
    FAIL,
    TERM,
    AffineUpdate,
    Fork,
    PTS,
    PTSBuilder,
    Transition,
    bernoulli,
    validate_pts,
)


def make_race() -> PTS:
    """The tortoise-hare race of Figure 1."""
    b = PTSBuilder(["x", "y"], init={"x": 40, "y": 0}, name="race")
    b.transition(
        "head",
        guard=[b.le(var("x"), 99), b.le(var("y"), 99)],
        forks=[
            ("head", "1/2", {"x": var("x") + 1, "y": var("y") + 2}),
            ("head", "1/2", {"x": var("x") + 1}),
        ],
    )
    b.goto("head", TERM, guard=[b.ge(var("x"), 100)])
    b.transition(
        "head",
        guard=[b.le(var("x"), 99), b.ge(var("y"), 100)],
        forks=[(FAIL, 1, {})],
    )
    return b.build(init_location="head")


class TestAffineUpdate:
    def test_identity(self):
        upd = AffineUpdate.identity()
        assert upd.apply({"x": Fraction(3)}) == {"x": 3}

    def test_simultaneous_assignment(self):
        # swap is the classic test of tuple-assignment semantics
        upd = AffineUpdate({"x": var("y"), "y": var("x")})
        assert upd.apply({"x": Fraction(1), "y": Fraction(2)}) == {"x": 2, "y": 1}

    def test_with_sampling_variable(self):
        upd = AffineUpdate({"x": var("x") + var("r")})
        out = upd.apply({"x": Fraction(1)}, {"r": Fraction(5)})
        assert out == {"x": 6}

    def test_apply_float(self):
        upd = AffineUpdate({"x": var("x") * 2})
        assert upd.apply_float({"x": 1.5}) == {"x": 3.0}

    def test_matrices(self):
        upd = AffineUpdate({"x": var("x") + var("r") * 2 + 7})
        q, r, e = upd.matrices(["x", "y"], ["r"])
        assert q == [[1, 0], [0, 1]]
        assert r == [[2], [0]]
        assert e == [7, 0]

    def test_repr(self):
        assert "identity" in repr(AffineUpdate.identity())


class TestForkAndTransition:
    def test_fork_probability_range(self):
        with pytest.raises(ModelError):
            Fork("a", 0)
        with pytest.raises(ModelError):
            Fork("a", "3/2")

    def test_transition_probability_sum(self):
        guard = Polyhedron.universe(["x"])
        with pytest.raises(ModelError):
            Transition("a", guard, [Fork("b", "1/2")])

    def test_transition_ok(self):
        guard = Polyhedron.universe(["x"])
        t = Transition("a", guard, [Fork("b", "1/2"), Fork("c", "1/2")])
        assert len(t.forks) == 2


class TestPTSConstruction:
    def test_race_shape(self):
        pts = make_race()
        assert pts.program_vars == ("x", "y")
        assert set(pts.interior_locations) == {"head"}
        assert len(pts.transitions_from("head")) == 3
        assert pts.is_sink(TERM) and pts.is_sink(FAIL)
        assert not pts.is_sink("head")
        assert pts.max_fork_count() == 2

    def test_transition_from_sink_rejected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto(TERM, "a")
        with pytest.raises(ModelError):
            b.build(init_location="a")

    def test_unknown_update_target_rejected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", TERM, update={"zz": var("x")})
        with pytest.raises(ModelError):
            b.build(init_location="a")

    def test_undeclared_sampling_var_rejected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", TERM, update={"x": var("r")})
        with pytest.raises(ModelError):
            b.build(init_location="a")

    def test_declared_sampling_var_ok(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.sampling("r", bernoulli("1/2"))
        b.goto("a", TERM, update={"x": var("r")})
        pts = b.build(init_location="a")
        assert pts.sampling_vars == ("r",)

    def test_name_collision_rejected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        with pytest.raises(ModelError):
            b.sampling("x", bernoulli("1/2"))
            b.goto("a", TERM)
            b.build(init_location="a")

    def test_missing_init_valuation(self):
        b = PTSBuilder(["x", "y"], init={"x": 0})
        b.goto("a", TERM)
        with pytest.raises(ModelError):
            b.build(init_location="a")

    def test_guard_over_nonprogram_variable_rejected(self):
        guard = Polyhedron(["x", "w"], [AffineIneq.le(var("w"), 0)])
        with pytest.raises(ModelError):
            PTS(
                ["x"],
                "a",
                {"x": 0},
                [Transition("a", guard, [Fork(TERM, 1)])],
            )

    def test_enabled_transition_picks_matching_guard(self):
        pts = make_race()
        t = pts.enabled_transition("head", {"x": 50.0, "y": 0.0})
        assert t is not None and len(t.forks) == 2
        t2 = pts.enabled_transition("head", {"x": 100.0, "y": 0.0})
        assert t2 is not None and t2.forks[0].destination == TERM

    def test_enabled_transition_none_outside_cover(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", TERM, guard=[b.le(var("x"), 0)])
        pts = b.build(init_location="a")
        assert pts.enabled_transition("a", {"x": 5.0}) is None

    def test_pretty_output(self):
        text = make_race().pretty()
        assert "program vars : x, y" in text
        assert "w.p. 1/2" in text


class TestValidation:
    def test_race_validates(self):
        report = validate_pts(make_race(), region={"x": (0, 120), "y": (0, 120)})
        assert report.ok
        report.raise_if_bad()

    def test_overlapping_guards_detected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", TERM, guard=[b.le(var("x"), 10)])
        b.goto("a", FAIL, guard=[b.le(var("x"), 5)])
        report = validate_pts(b.build(init_location="a"), check_complete=False)
        assert not report.exclusive
        with pytest.raises(ModelError):
            report.raise_if_bad()

    def test_boundary_overlap_tolerated(self):
        # closed complement convention: x <= 10 and x >= 10 share only x = 10
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", TERM, guard=[b.le(var("x"), 10)])
        b.goto("a", FAIL, guard=[b.ge(var("x"), 10)])
        report = validate_pts(b.build(init_location="a"))
        assert report.exclusive and report.complete

    def test_incomplete_cover_detected(self):
        # the initial state x = 5 reaches location 'a' with no enabled guard
        b = PTSBuilder(["x"], init={"x": 5})
        b.goto("a", TERM, guard=[b.le(var("x"), 0)])
        report = validate_pts(b.build(init_location="a"))
        assert not report.complete

    def test_incomplete_cover_after_step_detected(self):
        # covered at init but the successor x = 1 falls outside every guard
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", "a", guard=[b.le(var("x"), 0)], update={"x": var("x") + 1})
        report = validate_pts(b.build(init_location="a"))
        assert not report.complete

    def test_missing_transitions_detected(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.goto("a", "b")
        report = validate_pts(b.build(init_location="a"))
        assert not report.complete
        assert any("no outgoing" in p for p in report.problems)
