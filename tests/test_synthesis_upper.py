"""End-to-end tests for the upper-bound synthesis algorithms.

The key cross-validations:

* every synthesized upper bound must dominate the exact ``vpf`` from value
  iteration (or its rigorous lower bracket under truncation);
* ExpLinSyn (complete) must be at least as tight as HoeffdingSynthesis,
  which in turn must beat the Azuma baseline (Remark 2);
* the Race instance must land on the paper's reported numbers.
"""

import math

import pytest

from repro.lang import compile_source
from repro.core import (
    azuma_baseline,
    exp_lin_syn,
    generate_interval_invariants,
    hoeffding_synthesis,
    value_iteration,
)

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

SMALL_WALK = """
x := 0
t := 0
while x <= 9:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
assert t <= 50
"""


@pytest.fixture(scope="module")
def race_pts():
    return compile_source(RACE, name="race").pts


@pytest.fixture(scope="module")
def race_explinsyn(race_pts):
    return exp_lin_syn(race_pts)


@pytest.fixture(scope="module")
def race_hoeffding(race_pts):
    return hoeffding_synthesis(race_pts)


class TestExpLinSynRace:
    def test_matches_paper_bound(self, race_explinsyn):
        # paper Table 1, Race (40, 0): 1.52e-7
        assert race_explinsyn.log_bound == pytest.approx(math.log(1.52e-7), abs=0.05)

    def test_dominates_exact_vpf(self, race_pts, race_explinsyn):
        vi = value_iteration(race_pts)
        assert race_explinsyn.bound >= vi.lower

    def test_template_matches_paper_table4(self, race_explinsyn, race_pts):
        # Table 4: exp(-1.18 x + 0.85 y + 31.79) at the loop head
        head = race_pts.init_location
        coeffs = race_explinsyn.state_function.coeffs[head]
        assert coeffs["x"] == pytest.approx(-1.18, abs=0.05)
        assert coeffs["y"] == pytest.approx(0.85, abs=0.05)

    def test_certificate_verifies(self, race_explinsyn):
        race_explinsyn.verify()  # must not raise

    def test_solver_reported_feasible(self, race_explinsyn):
        assert "violation" in race_explinsyn.solver_info


class TestHoeffdingRace:
    def test_matches_paper_scale(self, race_hoeffding):
        # paper Table 1: 9.08e-4 on the 3-location Figure-1 PTS; our
        # compiler fuses the loop into one location, which legitimately
        # tightens the RepRSM bound (verified against exact vpf = 2.6e-8)
        assert 2.6e-8 < race_hoeffding.bound < 5e-3

    def test_reprsm_data_recorded(self, race_hoeffding):
        data = race_hoeffding.reprsm
        assert data is not None
        assert data.eps > 0
        assert data.delta == 1.0
        assert data.beta <= 0

    def test_certificate_verifies(self, race_hoeffding):
        race_hoeffding.verify()

    def test_looser_than_explinsyn(self, race_explinsyn, race_hoeffding):
        assert race_hoeffding.log_bound >= race_explinsyn.log_bound - 1e-9


class TestAzumaBaseline:
    def test_ordering_hoeffding_beats_azuma(self, race_pts, race_hoeffding):
        az = azuma_baseline(race_pts)
        # Remark 2: the Hoeffding bound is always at least as tight
        assert race_hoeffding.log_bound <= az.log_bound + 1e-9
        assert az.bound < 1.0  # still informative on this benchmark

    def test_azuma_reprsm_symmetric(self, race_pts):
        az = azuma_baseline(race_pts)
        assert az.reprsm.beta == pytest.approx(-0.5, abs=1e-6)


class TestSmallWalk:
    def test_all_methods_sound(self):
        pts = compile_source(SMALL_WALK, name="small").pts
        vi = value_iteration(pts, max_states=100_000)
        upper_complete = exp_lin_syn(pts)
        upper_hoeffding = hoeffding_synthesis(pts)
        assert upper_complete.bound >= vi.lower - 1e-12
        assert upper_hoeffding.bound >= vi.lower - 1e-12
        assert upper_complete.log_bound <= upper_hoeffding.log_bound + 1e-6

    def test_nontrivial_bound(self):
        pts = compile_source(SMALL_WALK, name="small").pts
        cert = exp_lin_syn(pts)
        assert cert.bound < 0.1  # T > 50 is unlikely with drift 1/2
        # the synthesized exponent matches the paper's Section 3.2 shape
        head = pts.init_location
        coeffs = cert.state_function.coeffs[head]
        assert coeffs["x"] == pytest.approx(-0.351, abs=0.01)
        assert coeffs["t"] == pytest.approx(0.124, abs=0.01)


class TestEdgeCases:
    def test_certain_violation_bound_is_one(self):
        src = "x := 0\nassert x >= 1"
        pts = compile_source(src, name="fail").pts
        cert = exp_lin_syn(pts)
        assert cert.bound == pytest.approx(1.0, abs=1e-6)

    def test_unreachable_violation_gets_tiny_bound(self):
        src = "x := 5\nassert x >= 1"
        pts = compile_source(src, name="ok").pts
        cert = exp_lin_syn(pts)
        assert cert.bound < 1e-6

    def test_explicit_invariants_accepted(self, race_pts):
        inv = generate_interval_invariants(race_pts)
        cert = exp_lin_syn(race_pts, invariants=inv)
        assert cert.bound < 1e-6

    def test_probabilistic_choice_exact(self):
        # one coin flip: vpf = 1/4 exactly; the template can express it
        src = "x := 0\nif prob(0.25):\n  x := 1\nassert x <= 0"
        pts = compile_source(src, name="coin").pts
        cert = exp_lin_syn(pts)
        assert cert.bound == pytest.approx(0.25, rel=1e-3)
