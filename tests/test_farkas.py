"""Tests for the Farkas' lemma encoder (Lemma 2)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.numeric.lp import LinearProgram
from repro.polyhedra import AffineIneq, FarkasEncoder, Polyhedron, TemplateConstraint
from repro.polyhedra.linexpr import LinExpr, var


def _solve_block(constraints):
    lp = LinearProgram()
    for c in constraints:
        if c.relation == "<=":
            lp.add_le(c.expr, c.label)
        else:
            lp.add_eq(c.expr, c.label)
    return lp.solve()


class TestTemplateConstraint:
    def test_relation_validated(self):
        with pytest.raises(ModelError):
            TemplateConstraint(var("t"), ">=")

    def test_holds(self):
        c = TemplateConstraint(var("t") - 1, "<=")
        assert c.holds({"t": 1.0})
        assert not c.holds({"t": 2.0})

    def test_eq_holds(self):
        c = TemplateConstraint(var("t") - 1, "==")
        assert c.holds({"t": 1.0})
        assert not c.holds({"t": 0.0})

    def test_missing_unknowns_default_zero(self):
        c = TemplateConstraint(var("t") - 1, "<=")
        assert c.holds({})

    def test_str_mentions_label(self):
        c = TemplateConstraint(var("t"), "<=", label="C3")
        assert "C3" in str(c)


class TestFarkasImplication:
    def test_valid_implication_feasible(self):
        # forall x in [0, 10]: x <= c  should force c >= 10
        poly = Polyhedron.from_box({"x": (0, 10)})
        enc = FarkasEncoder()
        block = enc.encode_implication(
            poly, {"x": LinExpr.constant(1)}, var("c"), label="t"
        )
        assignment = _solve_block(block)
        # minimizing nothing: just feasibility; check c is forced >= 10
        lp = LinearProgram()
        for c in block:
            (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
        values = lp.solve(minimize=var("c"))
        assert values["c"] == pytest.approx(10.0, abs=1e-6)
        assert assignment is not None

    def test_invalid_implication_infeasible(self):
        # forall x >= 0: x <= 5 is false and x-free, so Farkas must fail
        poly = Polyhedron.from_box({"x": (0, None)})
        enc = FarkasEncoder()
        block = enc.encode_implication(
            poly, {"x": LinExpr.constant(1)}, LinExpr.constant(5), label="t"
        )
        lp = LinearProgram()
        for c in block:
            (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
        assert not lp.feasible()

    def test_unknown_coefficient_in_target(self):
        # forall x in [1, 2]: a*x <= 1  <=>  a <= 1/2 (for a >= 0 side)
        poly = Polyhedron.from_box({"x": (1, 2)})
        enc = FarkasEncoder()
        block = enc.encode_implication(poly, {"x": var("a")}, LinExpr.constant(1))
        lp = LinearProgram()
        for c in block:
            (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
        values = lp.solve(minimize=-var("a"))  # maximize a
        assert values["a"] == pytest.approx(0.5, abs=1e-6)

    def test_foreign_target_variable_rejected(self):
        poly = Polyhedron.from_box({"x": (0, 1)})
        enc = FarkasEncoder()
        with pytest.raises(ModelError):
            enc.encode_implication(poly, {"zz": LinExpr.constant(1)}, LinExpr.constant(0))

    def test_multiplier_names_fresh_across_calls(self):
        poly = Polyhedron.from_box({"x": (0, 1)})
        enc = FarkasEncoder()
        enc.encode_implication(poly, {"x": LinExpr.constant(1)}, var("c"))
        before = set(enc.multipliers)
        enc.encode_implication(poly, {"x": LinExpr.constant(1)}, var("c"))
        assert before < set(enc.multipliers)


class TestConeCondition:
    def test_d1_example(self):
        # cone {x <= 0, y <= 0}: alpha . v <= 0 on the cone iff alpha >= 0
        cone = Polyhedron.from_box({"x": (None, 0), "y": (None, 0)})
        enc = FarkasEncoder()
        block = enc.encode_cone_condition(
            cone, {"x": var("ax"), "y": var("ay")}, label="D1"
        )
        lp = LinearProgram()
        for c in block:
            (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
        values = lp.solve(minimize=var("ax") + var("ay"))
        # minimization pushes toward the boundary ax, ay >= 0
        assert values["ax"] >= -1e-7 and values["ay"] >= -1e-7

    def test_d1_rejects_negative_direction(self):
        cone = Polyhedron.from_box({"x": (None, 0)})
        enc = FarkasEncoder()
        block = enc.encode_cone_condition(cone, {"x": LinExpr.constant(-1)})
        lp = LinearProgram()
        for c in block:
            (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
        assert not lp.feasible()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_farkas_agrees_with_lp_implication(seed):
    """Farkas feasibility must coincide with the LP implication check on
    random nonempty polyhedra and random constant targets."""
    rng = random.Random(seed)
    n = rng.randint(1, 2)
    names = [f"v{i}" for i in range(n)]
    poly = Polyhedron.from_box(
        {name: (rng.randint(-3, 0), rng.randint(0, 4)) for name in names}
    )
    target_coeffs = {name: Fraction(rng.randint(-2, 2)) for name in names}
    target_rhs = Fraction(rng.randint(-5, 10))
    ineq = AffineIneq.le(LinExpr(target_coeffs), target_rhs)
    truth = poly.implies(ineq)

    enc = FarkasEncoder()
    block = enc.encode_implication(
        poly,
        {k: LinExpr.constant(v) for k, v in target_coeffs.items()},
        LinExpr.constant(target_rhs),
    )
    lp = LinearProgram()
    for c in block:
        (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr)
    assert lp.feasible() == truth
