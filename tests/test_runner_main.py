"""Tests for the experiment runner's command-line entry point."""

import pytest

from repro.experiments.runner import main


class TestRunnerMain:
    def test_table2_end_to_end(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        # all nine hardware rows present with their paper references
        for name in ("M1DWalk", "Newton", "Ref"):
            assert out.count(name) == 3
        assert "0.998463" in out  # Ref p=1e-7 matches the paper digits

    def test_table1_family_filter_without_slow_columns(self, capsys):
        assert main(["table1", "StoInv", "--no-hoeffding", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "Race" in out and "1DWalk" in out
        assert "RdAdder" not in out  # Deviation family filtered out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_requires_target(self):
        with pytest.raises(SystemExit):
            main([])
