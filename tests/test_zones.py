"""Tests for the zone (DBM) abstract domain."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.polyhedra import AffineIneq, var
from repro.core.zones import Zone, generate_zone_invariants


def F(x):
    return Fraction(x)


class TestZoneBasics:
    def test_from_point(self):
        z = Zone.from_point(["x", "y"], {"x": F(1), "y": F(2)})
        p = z.to_polyhedron()
        assert p.contains({"x": 1, "y": 2})
        assert not p.contains({"x": 2, "y": 2})

    def test_top_contains_everything(self):
        z = Zone.top(["x"])
        assert z.to_polyhedron().contains({"x": 10**9})

    def test_meet_atom_single_variable(self):
        z = Zone.top(["x"]).meet_atom(var("x") - 5)  # x <= 5
        p = z.to_polyhedron()
        assert p.contains({"x": 5}) and not p.contains({"x": 6})

    def test_meet_atom_difference(self):
        z = Zone.top(["x", "y"]).meet_atom(var("x") - var("y") - 3)  # x - y <= 3
        p = z.to_polyhedron()
        assert p.contains({"x": 3, "y": 0})
        assert not p.contains({"x": 4, "y": 0})

    def test_meet_atom_unsupported_shape_is_ignored(self):
        z = Zone.top(["x", "y"]).meet_atom(var("x") + var("y") - 3)
        assert z.to_polyhedron().contains({"x": 100, "y": 100})  # soundly top

    def test_inconsistent_zone_is_bottom(self):
        z = Zone.top(["x"]).meet_atom(var("x") - 1).meet_atom(-var("x") + 2)
        assert z.is_bottom
        assert z.to_polyhedron().is_empty()

    def test_closure_propagates(self):
        # x - y <= 1 and y <= 2 implies x <= 3
        z = Zone.top(["x", "y"]).meet_atom(var("x") - var("y") - 1).meet_atom(var("y") - 2)
        p = z.to_polyhedron()
        assert p.implies(AffineIneq.le(var("x"), 3))


class TestZoneLattice:
    def test_join_is_upper_bound(self):
        a = Zone.from_point(["x"], {"x": F(1)})
        b = Zone.from_point(["x"], {"x": F(5)})
        j = a.join(b)
        p = j.to_polyhedron()
        assert p.contains({"x": 1}) and p.contains({"x": 5})
        assert not p.contains({"x": 6})

    def test_join_with_bottom(self):
        a = Zone.from_point(["x"], {"x": F(1)})
        bot = Zone.top(["x"]).meet_atom(var("x") - 0).meet_atom(-var("x") + 1)
        assert bot.is_bottom
        assert a.join(bot).to_polyhedron().contains({"x": 1})
        assert bot.join(a).to_polyhedron().contains({"x": 1})

    def test_le(self):
        small = Zone.from_point(["x"], {"x": F(1)})
        big = Zone.top(["x"]).meet_atom(var("x") - 5).meet_atom(-var("x"))
        assert small.le(big)
        assert not big.le(small)

    def test_widen_jumps_to_threshold(self):
        old = Zone.top(["x"]).meet_atom(var("x") - 3).close()
        new = Zone.top(["x"]).meet_atom(var("x") - 4).close()
        widened = old.widen(new, thresholds=[F(10)])
        p = widened.to_polyhedron()
        assert p.implies(AffineIneq.le(var("x"), 10))
        assert not p.implies(AffineIneq.le(var("x"), 9))

    def test_widen_to_infinity_without_threshold(self):
        old = Zone.top(["x"]).meet_atom(var("x") - 3).close()
        new = Zone.top(["x"]).meet_atom(var("x") - 4).close()
        widened = old.widen(new, thresholds=[])
        assert widened.to_polyhedron().contains({"x": 10**9})


class TestZoneAssign:
    def test_shift_is_exact(self):
        z = Zone.from_point(["x"], {"x": F(3)})
        z2 = z.assign({"x": var("x") + 2})
        p = z2.to_polyhedron()
        assert p.contains({"x": 5}) and not p.contains({"x": 4})

    def test_copy_keeps_difference(self):
        z = Zone.from_point(["x", "y"], {"x": F(0), "y": F(0)})
        z2 = z.assign({"x": var("y") + 1})
        p = z2.to_polyhedron()
        assert p.implies(AffineIneq.le(var("x") - var("y"), 1))
        assert p.implies(AffineIneq.ge(var("x") - var("y"), 1))

    def test_simultaneous_swap(self):
        z = Zone.from_point(["x", "y"], {"x": F(1), "y": F(2)})
        z2 = z.assign({"x": var("y"), "y": var("x")})
        p = z2.to_polyhedron()
        assert p.contains({"x": 2, "y": 1})
        assert not p.contains({"x": 1, "y": 2})

    def test_parallel_increment_keeps_relation(self):
        # x, y := x+1, y+2 from x=y=0 keeps y - x = x (i.e. y = 2x)? No —
        # zones track y - x <= c: after the update the difference shifts by 1
        z = Zone.from_point(["x", "y"], {"x": F(0), "y": F(0)})
        z2 = z.assign({"x": var("x") + 1, "y": var("y") + 2})
        p = z2.to_polyhedron()
        assert p.implies(AffineIneq.le(var("y") - var("x"), 1))
        assert p.implies(AffineIneq.ge(var("y") - var("x"), 1))

    def test_interval_fallback_for_general_affine(self):
        z = Zone.from_point(["x", "y"], {"x": F(1), "y": F(2)})
        z2 = z.assign({"x": var("x") + var("y")})  # not zone-exact
        p = z2.to_polyhedron()
        assert p.contains({"x": 3, "y": 2})
        assert not p.contains({"x": 4, "y": 2})


@settings(max_examples=25, deadline=None)
@given(
    x0=st.integers(min_value=-5, max_value=5),
    y0=st.integers(min_value=-5, max_value=5),
    shift=st.integers(min_value=-3, max_value=3),
)
def test_zone_transfer_soundness_random(x0, y0, shift):
    """Concrete execution must stay inside the abstract post-state."""
    z = Zone.from_point(["x", "y"], {"x": F(x0), "y": F(y0)})
    post = z.assign({"x": var("y") + shift, "y": var("x") + var("y")})
    concrete = {"x": y0 + shift, "y": x0 + y0}
    assert post.to_polyhedron().contains(concrete)


class TestZoneInvariants:
    def test_race_relational_fail_invariant(self):
        src = (
            "x := 40\ny := 0\n"
            "while x <= 99 and y <= 99:\n"
            "    if prob(0.5):\n"
            "        x, y := x + 1, y + 2\n"
            "    else:\n"
            "        x := x + 1\n"
            "assert x >= 100"
        )
        pts = compile_source(src, name="race").pts
        inv = generate_zone_invariants(pts)
        fail_inv = inv.of(pts.fail_location)
        # zones capture the relational bound the box domain cannot:
        # the hare's lead over the tortoise never exceeds 60 (start gap 40
        # + at most +1 drift per step over at most ... steps)
        assert fail_inv.implies(AffineIneq.le(var("y") - var("x"), 60))

    def test_sound_on_trajectories(self):
        for src_name in ("M1DWalk", "Race", "Rdwalk"):
            from repro.programs import get_benchmark

            inst = get_benchmark(src_name) if src_name != "Rdwalk" else get_benchmark(
                src_name, n=400
            )
            inv = generate_zone_invariants(inst.pts)
            assert inv.check_on_trajectories(episodes=40, seed=4) == []

    def test_usable_by_synthesis(self):
        from repro.core import exp_lin_syn
        from repro.programs import get_benchmark

        inst = get_benchmark("Race", x0=40, y0=0)
        inv = generate_zone_invariants(inst.pts)
        cert = exp_lin_syn(inst.pts, inv)
        assert cert.bound < 1e-5  # at least as informative as intervals
