"""Tests for the AST -> PTS compiler."""

from fractions import Fraction

import pytest

from repro.errors import CompileError
from repro.lang import ast, compile_source, split_cells
from repro.lang.compiler import bool_to_polyhedron
from repro.lang.parser import parse_program
from repro.pts import FAIL, TERM, simulate, validate_pts

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99 invariant x <= 100 and y <= 101:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

RDWALK = """
x := 0
t := 0
while x <= 99 invariant t >= 0:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
assert t <= 500
"""

UNRELIABLE = """
const p = 0.0001
x := 1
while x <= 99:
    switch:
        prob(p): exit
        prob(0.75 * (1 - p)): x := x + 1
        prob(0.25 * (1 - p)): x := x - 1
assert false
"""


class TestSplitCells:
    def test_atom(self):
        cond = parse_program("assert x <= 5").body[0].cond
        true_cells, false_cells = split_cells(cond, ("x",), True)
        assert len(true_cells) == 1 and len(false_cells) == 1
        assert true_cells[0].contains({"x": 5})
        assert false_cells[0].contains({"x": 6})
        assert not false_cells[0].contains({"x": 5})  # integer tightening

    def test_closed_complement_without_integer_mode(self):
        cond = parse_program("assert x <= 5").body[0].cond
        _, false_cells = split_cells(cond, ("x",), False)
        assert false_cells[0].contains({"x": 5})  # boundary overlap allowed

    def test_fractional_coefficients_never_tightened(self):
        cond = parse_program("assert x <= 0.5").body[0].cond
        _, false_cells = split_cells(cond, ("x",), True)
        assert false_cells[0].contains({"x": Fraction(1, 2)})

    def test_conjunction_cells_disjoint_and_cover(self):
        cond = parse_program("assert x <= 5 and y <= 5").body[0].cond
        true_cells, false_cells = split_cells(cond, ("x", "y"), True)
        assert len(true_cells) == 1
        assert len(false_cells) == 3
        for pt in [{"x": a, "y": b} for a in (0, 10) for b in (0, 10)]:
            hits = [c for c in true_cells + false_cells if c.contains(pt)]
            assert len(hits) == 1

    def test_disjunction(self):
        cond = parse_program("assert x <= 0 or y <= 0").body[0].cond
        true_cells, false_cells = split_cells(cond, ("x", "y"), True)
        assert len(false_cells) == 1
        # disjoint true cells
        assert all(
            not a.intersect(b).contains({"x": -5, "y": -5})
            for i, a in enumerate(true_cells)
            for b in true_cells[i + 1 :]
        ) or len(true_cells) >= 2

    def test_bool_consts(self):
        t, f = split_cells(ast.BoolConst(True), ("x",), True)
        assert len(t) == 1 and not f
        assert not t[0].inequalities
        t, f = split_cells(ast.BoolConst(False), ("x",), True)
        assert not t and len(f) == 1

    def test_empty_cells_pruned(self):
        cond = parse_program("assert x <= 0 and x >= 10").body[0].cond
        true_cells, false_cells = split_cells(cond, ("x",), True)
        assert not true_cells
        assert len(true_cells) + len(false_cells) <= 3

    def test_atom_blowup_guard(self):
        atoms = " and ".join(f"x{i} <= {i}" for i in range(13))
        cond = parse_program(f"assert {atoms}").body[0].cond
        with pytest.raises(CompileError):
            split_cells(cond, tuple(f"x{i}" for i in range(13)), True)


class TestBoolToPolyhedron:
    def test_conjunction(self):
        cond = parse_program("assert x <= 100 and y >= 0").body[0].cond
        poly = bool_to_polyhedron(cond, ("x", "y"), True)
        assert poly.contains({"x": 100, "y": 0})
        assert not poly.contains({"x": 101, "y": 0})

    def test_disjunction_rejected(self):
        cond = parse_program("assert x <= 0 or y <= 0").body[0].cond
        with pytest.raises(CompileError):
            bool_to_polyhedron(cond, ("x", "y"), True)

    def test_true_allowed(self):
        poly = bool_to_polyhedron(ast.BoolConst(True), ("x",), True)
        assert not poly.inequalities


class TestCompileRace:
    def test_structure(self):
        result = compile_source(RACE, name="race")
        pts = result.pts
        # initial folding put (40, 0) into v_init at the loop head
        assert pts.init_valuation == {"x": 40, "y": 0}
        assert pts.init_location in result.invariants
        # the clean-up passes fuse the loop into at most the paper's three
        # Figure-1 locations (head, switch, assert); with fork flattening
        # the whole loop collapses into a single location
        assert 1 <= len(pts.interior_locations) <= 3
        head = pts.init_location
        loop = [t for t in pts.transitions_from(head) if len(t.forks) == 2]
        assert loop, "loop transition with two probabilistic forks expected"
        dests = {f.destination for f in loop[0].forks}
        assert dests == {head}

    def test_validates(self):
        result = compile_source(RACE, name="race")
        assert validate_pts(result.pts).ok

    def test_simulation_terminates(self):
        result = compile_source(RACE, name="race")
        r = simulate(result.pts, episodes=3000, seed=0)
        assert r.censored == 0
        assert r.termination_rate > 0.999  # hare winning is ~1.5e-7

    def test_guard_complement_is_integer_tightened(self):
        pts = compile_source(RACE).pts
        head = pts.init_location
        guards = [t.guard for t in pts.transitions_from(head)]
        # some guard requires x >= 100 (i.e. -x + 100 <= 0)
        assert any(
            any(i.expr.coeff("x") == -1 and i.expr.const == 100 for i in g.inequalities)
            for g in guards
        )


class TestCompileRdwalk:
    def test_simulation_matches_theory(self):
        pts = compile_source(RDWALK, name="rdwalk").pts
        r = simulate(pts, episodes=4000, seed=1)
        # drift +1/2 per step: ~200 loop iterations, T > 500 vanishingly rare
        assert r.violation_rate < 0.01
        assert r.termination_rate > 0.99

    def test_invariant_attached_to_head(self):
        result = compile_source(RDWALK, name="rdwalk")
        assert len(result.invariants) == 1

    def test_switch_forks(self):
        pts = compile_source(RDWALK, name="rdwalk").pts
        probs = sorted(
            f.probability for t in pts.transitions for f in t.forks if len(t.forks) == 2
        )
        assert probs == [Fraction(1, 4), Fraction(3, 4)]


class TestCompileUnreliable:
    def test_exit_goes_to_term(self):
        pts = compile_source(UNRELIABLE, name="unreliable").pts
        # the exit arm must lead (possibly through elision) to __term__
        dests = {
            f.destination for t in pts.transitions for f in t.forks
        }
        assert TERM in dests and FAIL in dests

    def test_assert_false_reached_on_loop_exit(self):
        pts = compile_source(UNRELIABLE, name="unreliable").pts
        r = simulate(pts, episodes=2000, seed=3)
        # with p = 1e-4 most runs finish the walk and then hit assert false
        assert r.violation_rate > 0.9

    def test_const_probabilities_folded(self):
        pts = compile_source(UNRELIABLE).pts
        three_fork = [t for t in pts.transitions if len(t.forks) == 3]
        assert three_fork
        total = sum(f.probability for f in three_fork[0].forks)
        assert total == 1


class TestCompileMisc:
    def test_assert_inside_loop(self):
        src = (
            "x := 0\n"
            "while x >= 0:\n"
            "  assert x <= 10\n"
            "  switch:\n"
            "    prob(0.5): x := x - 2\n"
            "    prob(0.5): x := x + 1\n"
        )
        pts = compile_source(src, name="walk").pts
        r = simulate(pts, episodes=2000, max_steps=4000, seed=7)
        assert r.violation_rate > 0.0
        assert r.violation_rate + r.termination_rate == pytest.approx(1.0)

    def test_no_variables_rejected(self):
        with pytest.raises(CompileError):
            compile_source("skip")

    def test_sampling_in_updates(self):
        src = "r ~ bernoulli(0.5)\nx := 0\nn := 0\nwhile n <= 9:\n  x, n := x + r, n + 1\nassert x <= 8"
        pts = compile_source(src, name="acc").pts
        assert pts.sampling_vars == ("r",)
        r = simulate(pts, episodes=4000, seed=5)
        # Pr[Binomial(10, 1/2) >= 9] = 11/1024
        assert r.violation_rate == pytest.approx(11 / 1024, abs=0.01)

    def test_undeclared_name_rejected(self):
        with pytest.raises(CompileError):
            compile_source("x := zz + 1")

    def test_nested_prob_branches(self):
        src = (
            "x := 0\n"
            "if prob(0.5):\n"
            "  if prob(0.5):\n"
            "    x := 1\n"
            "assert x <= 0"
        )
        pts = compile_source(src).pts
        r = simulate(pts, episodes=8000, seed=2)
        assert r.violation_rate == pytest.approx(0.25, abs=0.03)

    def test_deterministic_if_else(self):
        src = (
            "x := 5\ny := 0\n"
            "if x <= 3:\n"
            "  y := 1\n"
            "else:\n"
            "  y := 2\n"
            "assert y <= 1"
        )
        pts = compile_source(src).pts
        r = simulate(pts, episodes=100, seed=0)
        assert r.violation_rate == 1.0

    def test_elision_fuses_updates_onto_forks(self):
        # branch bodies with a single assignment must land on the fork itself
        pts = compile_source(RACE).pts
        switch = [t for t in pts.transitions if len(t.forks) == 2][0]
        updates = [f.update.assignments for f in switch.forks]
        assert any("y" in u for u in updates)

    def test_initial_folding_chain(self):
        src = "x := 1\ny := x + 1\nz := y + x\nassert z >= 3"
        pts = compile_source(src).pts
        assert pts.init_valuation == {"x": 1, "y": 2, "z": 3}

    def test_sampling_updates_not_fused_across_draws(self):
        # two consecutive draws of r must stay distinct PTS steps
        src = (
            "r ~ bernoulli(0.5)\n"
            "x := 0\n"
            "y := 0\n"
            "x := x + r\n"
            "y := y + r\n"
            "assert x + y <= 1"
        )
        pts = compile_source(src).pts
        r = simulate(pts, episodes=8000, seed=9)
        # if the draws were fused, x + y would be 0 or 2 with prob 1/2 each
        # (violation rate 1/2); independent draws violate with prob 1/4
        assert r.violation_rate == pytest.approx(0.25, abs=0.03)

    def test_integer_mode_off(self):
        src = "x := 0\nwhile x <= 0.5:\n  x := x + 0.25\nassert x >= 0.75"
        pts = compile_source(src, integer_mode=False).pts
        r = simulate(pts, episodes=10, seed=0)
        assert r.violation_rate == 0.0
