"""Round-trip tests for the pretty-printer.

``pretty(parse(src))`` must re-parse to a program whose compiled PTS is
*behaviourally identical* — same simulated violation statistics under the
same seed — which is the observable equivalence that matters.
"""

import pytest

from repro.lang import compile_source, parse_program
from repro.lang.pretty import pretty, render_bool, render_expr
from repro.polyhedra.linexpr import var
from repro.pts import simulate

PROGRAMS = [
    "x := 40\ny := 0\nwhile x <= 99 and y <= 99:\n    if prob(0.5):\n        x, y := x + 1, y + 2\n    else:\n        x := x + 1\nassert x >= 100",
    "x := 0\nwhile x >= 0:\n    assert x <= 50\n    switch:\n        prob(0.5): x := x - 2\n        prob(0.5): x := x + 1",
    "const p = 0.01\ni := 0\nwhile i <= 9:\n    if prob(1 - p):\n        i := i + 1\n    else:\n        exit\nassert false",
    "r ~ uniform(-1, 1)\nx := 0\nk := 0\nwhile k <= 19:\n    x, k := x + r, k + 1\nassert x <= 10",
    "r ~ discrete((0.25, -1), (0.75, 2))\nx := 0\nn := 0\nwhile n <= 5:\n    x, n := x + r, n + 1\nassert x <= 9",
    "x := 1\nif x <= 0:\n    y := 1\nelse:\n    y := 2\nassert y >= 2",
    "x := 0\nwhile x <= 9 invariant x <= 10 and x >= 0:\n    x := x + 1\nassert x >= 10",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_roundtrip_reparses(source):
    program = parse_program(source)
    text = pretty(program)
    reparsed = parse_program(text)
    assert pretty(reparsed) == text  # idempotent after one round


@pytest.mark.parametrize("source", PROGRAMS)
def test_roundtrip_behaviour_preserved(source):
    original = compile_source(source, name="orig").pts
    roundtripped = compile_source(pretty(parse_program(source)), name="rt").pts
    a = simulate(original, episodes=1500, max_steps=3000, seed=17)
    b = simulate(roundtripped, episodes=1500, max_steps=3000, seed=17)
    assert a.violations == b.violations
    assert a.terminations == b.terminations
    assert a.total_steps == b.total_steps


class TestRenderers:
    def test_render_expr_fractions(self):
        e = var("x") / 3 - 2
        text = render_expr(e)
        assert "x" in text and "3" in text
        # must re-parse to the same expression
        rt = parse_program(f"q := {text}").body[0].values[0]
        assert rt == e

    def test_render_expr_constant(self):
        assert render_expr(var("x") - var("x")) == "0"

    def test_render_bool_atoms(self):
        cond = parse_program("assert x < 1 and y >= 2").body[0].cond
        text = render_bool(cond)
        assert "<" in text and "and" in text

    def test_render_nested_or(self):
        cond = parse_program("assert (a <= 1 or b <= 2) and c <= 3").body[0].cond
        text = render_bool(cond)
        rt = parse_program(f"assert {text}").body[0].cond
        assert render_bool(rt) == text

    def test_invariant_clause_preserved(self):
        src = "x := 0\nwhile x <= 9 invariant x <= 10:\n    x := x + 1\nassert x >= 10"
        text = pretty(parse_program(src))
        assert "invariant" in text
        loop = parse_program(text).body[1]
        assert loop.invariant is not None
