"""Tests for the benchmark registry and program reconstructions."""


import pytest

from repro.errors import ModelError
from repro.programs import BENCHMARKS, get_benchmark
from repro.pts import simulate, validate_pts

ALL_UPPER = [
    ("RdAdder", dict(deviation=25)),
    ("Robot", dict(deviation="1.8")),
    ("Rdwalk", dict(n=400)),
    ("Coupon", dict(n=100)),
    ("Prspeed", dict(n=150)),
    ("1DWalk", dict(x0=10)),
    ("2DWalk", dict(x0=1000, y0=10)),
    ("3DWalk", dict(x0=100, y0=100, z0=100)),
    ("Race", dict(x0=40, y0=0)),
]
ALL_LOWER = [
    ("M1DWalk", dict(p="1e-4")),
    ("Newton", dict(p="5e-4")),
    ("Ref", dict(p="1e-7")),
]


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        get_benchmark("Race")  # force family imports
        # 12 paper benchmarks + the promoted fuzz finds (family "Fuzzed")
        fuzzed = [n for n in BENCHMARKS if n.startswith("fz-")]
        assert len(BENCHMARKS) - len(fuzzed) == 12
        assert len(fuzzed) == 3

    def test_unknown_benchmark(self):
        with pytest.raises(ModelError):
            get_benchmark("NoSuchBenchmark")

    def test_label(self):
        inst = get_benchmark("Race", x0=40, y0=0)
        assert inst.label == "Race(x=40, y=0)"
        assert inst.family == "StoInv"


@pytest.mark.parametrize("name,kwargs", ALL_UPPER + ALL_LOWER)
def test_benchmarks_validate(name, kwargs):
    inst = get_benchmark(name, **kwargs)
    report = validate_pts(inst.pts)
    assert report.ok, report.problems


@pytest.mark.parametrize("name,kwargs", ALL_UPPER + ALL_LOWER)
def test_invariants_sound_on_trajectories(name, kwargs):
    inst = get_benchmark(name, **kwargs)
    assert inst.invariants.check_on_trajectories(episodes=30, seed=2) == []


class TestSemanticSpotChecks:
    def test_rdadder_simulated_deviation(self):
        # Pr[Binomial(500, .5) >= 275] ~ 0.014; d=25 row
        inst = get_benchmark("RdAdder", deviation=25)
        r = simulate(inst.pts, episodes=4000, seed=4)
        assert r.violation_rate == pytest.approx(0.014, abs=0.01)

    def test_coupon_mean_draws(self):
        # coupon collector over 5 coupons: E[T] = 5 * H_5 ~ 11.4
        inst = get_benchmark("Coupon", n=100)
        r = simulate(inst.pts, episodes=1500, seed=5)
        assert r.violation_rate < 0.01
        assert r.termination_rate > 0.99

    def test_newton_survival_rate(self):
        inst = get_benchmark("Newton", p="5e-4")
        r = simulate(inst.pts, episodes=3000, seed=6)
        # survival (= violation of `assert false`) ~ 0.744
        assert r.violation_rate == pytest.approx(0.744, abs=0.04)

    def test_ref_survival_rate(self):
        inst = get_benchmark("Ref", p="1e-5")
        r = simulate(inst.pts, episodes=800, max_steps=30_000, seed=7)
        assert r.violation_rate == pytest.approx(0.857, abs=0.05)

    def test_m1dwalk_survival(self):
        inst = get_benchmark("M1DWalk", p="1e-4")
        r = simulate(inst.pts, episodes=2000, seed=8)
        assert r.violation_rate == pytest.approx(0.984, abs=0.02)

    def test_2dwalk_termination(self):
        inst = get_benchmark("2DWalk", x0=50, y0=5)
        r = simulate(inst.pts, episodes=300, max_steps=20_000, seed=9)
        assert r.termination_rate > 0.99

    def test_3dwalk_steps_fractional(self):
        inst = get_benchmark("3DWalk", x0=5, y0=5, z0=5)
        r = simulate(inst.pts, episodes=200, max_steps=10_000, seed=10)
        assert r.violation_rate < 0.05
        assert r.termination_rate > 0.9

    def test_prspeed_mean_duration(self):
        inst = get_benchmark("Prspeed", n=150)
        r = simulate(inst.pts, episodes=1500, seed=11)
        # ~32 loop iterations at 1.5 expected speed; T > 150 essentially never
        assert r.violation_rate == 0.0
        assert r.termination_rate == 1.0
