"""Property-based end-to-end soundness: random programs, ordered bounds.

For randomly generated bounded walk programs we require the full ordering

    exp_low_syn  <=  exact vpf (value iteration)  <=  exp_lin_syn
                                                  <=  hoeffding  <=  azuma

wherever each synthesis succeeds.  This is the strongest invariant the
library offers and exercises every subsystem at once: parser, compiler,
invariant generation, canonicalization, DD, Farkas, LP, convex solving and
certificate verification.
"""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.lang import compile_source
from repro.core import (
    azuma_baseline,
    exp_lin_syn,
    exp_low_syn,
    hoeffding_synthesis,
    value_iteration,
)


def make_walk_source(
    start: int, low_exit: int, high_fail: int, p_up_pct: int, step_up: int, step_down: int
) -> str:
    """A bounded 1D walk failing at the top, terminating at the bottom."""
    return f"""
x := {start}
while x >= {low_exit + 1} and x <= {high_fail - 1}:
    switch:
        prob(0.{p_up_pct:02d}): x := x + {step_up}
        prob(0.{100 - p_up_pct:02d}): x := x - {step_down}
assert x <= {low_exit}
"""


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    start=st.integers(min_value=3, max_value=12),
    width=st.integers(min_value=4, max_value=10),
    p_up_pct=st.integers(min_value=20, max_value=80),
    step_up=st.integers(min_value=1, max_value=2),
    step_down=st.integers(min_value=1, max_value=2),
)
def test_bound_ordering_random_walks(start, width, p_up_pct, step_up, step_down):
    high = start + width
    source = make_walk_source(start, 0, high, p_up_pct, step_up, step_down)
    pts = compile_source(source, name="randwalk").pts

    truth = value_iteration(pts, max_states=60_000)
    assert truth.width < 1e-6, "bounded walk must converge"
    vpf = 0.5 * (truth.lower + truth.upper)

    upper = exp_lin_syn(pts)
    assert upper.bound >= truth.lower - 1e-9

    try:
        hoeff = hoeffding_synthesis(pts)
        assert hoeff.log_bound >= upper.log_bound - 1e-6
        assert hoeff.bound >= truth.lower - 1e-9
    except SynthesisError:
        pass  # incomplete algorithm may fail; completeness not required

    try:
        azuma = azuma_baseline(pts)
        assert azuma.bound >= truth.lower - 1e-9
    except SynthesisError:
        pass

    # lower bounds need a.s. termination, which holds for any biased walk;
    # the symmetric case (p = 50) has no affine RSM, so allow failure there
    try:
        lower = exp_low_syn(pts)
        assert lower.bound <= truth.upper + 1e-7
        assert lower.log_bound <= upper.log_bound + 1e-9
    except SynthesisError:
        pass


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    p_fail_bp=st.integers(min_value=1, max_value=400),  # basis points
    length=st.integers(min_value=5, max_value=40),
)
def test_hardware_chain_lower_bound_is_exact(p_fail_bp, length):
    """For a pure failure chain the Jensen strengthening is lossless, so
    ExpLowSyn must return exactly (1-p)^length."""
    p = p_fail_bp / 10_000.0
    source = f"""
const p = {p_fail_bp}/10000
i := 0
while i <= {length - 1}:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""
    pts = compile_source(source, name="chain").pts
    cert = exp_low_syn(pts)
    expected = (1.0 - p) ** length
    assert cert.bound == pytest.approx(expected, rel=1e-6)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=3, max_value=25),
    k_pct=st.integers(min_value=55, max_value=95),
)
def test_binomial_tail_upper_bound_dominates_truth(n, k_pct):
    """Upper bounds on Pr[Binomial(n, 1/2) >= k] vs the exact tail."""
    k = max(1, (n * k_pct) // 100)
    source = f"""
i := 0
x := 0
while i <= {n - 1}:
    if prob(0.5):
        i, x := i + 1, x + 1
    else:
        i := i + 1
assert x <= {k}
"""
    pts = compile_source(source, name="binom").pts
    cert = exp_lin_syn(pts)
    from math import comb

    exact = sum(comb(n, j) for j in range(k + 1, n + 1)) / 2.0**n
    assert cert.bound >= exact - 1e-12
