"""Table 1, Concentration block (Coupon, Prspeed, Rdwalk).

Regenerates ``Pr[T > n]`` upper bounds and compares against the [CFNH18]
RSM + Azuma baseline.  Paper claims asserted here:

* Section 5.2 beats the baseline by many orders of magnitude
  (Table 1 ratios range from 17 to 3.4e41 on this block);
* bounds decrease drastically as the threshold ``n`` grows.
"""

import math

import pytest

pytestmark = pytest.mark.bench

from repro.core import (
    cfnh18_concentration_bound,
    exp_lin_syn,
    hoeffding_synthesis,
    synthesize_bounded_rsm,
)
from repro.programs import get_benchmark

CASES = [
    ("Rdwalk", "n", [400, 500, 600]),
    ("Coupon", "n", [100, 300, 500]),
    ("Prspeed", "n", [150, 200, 250]),
]


@pytest.mark.parametrize(
    "name,n",
    [(name, n) for name, _, ns in CASES for n in ns],
)
def test_concentration_sec52(benchmark, name, n):
    inst = get_benchmark(name, n=n)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    assert cert.bound < 1e-3  # all paper entries are at most 7e-5
    rsm = synthesize_bounded_rsm(inst.pts, inst.invariants)
    baseline_ln = cfnh18_concentration_bound(rsm, float(n))
    # the fixed-point bound beats RSM + Azuma on every row
    assert cert.log_bound <= baseline_ln + 1e-6


@pytest.mark.parametrize("name,ns", [(name, ns) for name, _, ns in CASES])
def test_concentration_monotone_in_threshold(benchmark, name, ns):
    def run():
        return [
            exp_lin_syn(get_benchmark(name, n=n).pts, get_benchmark(name, n=n).invariants)
            for n in ns
        ]

    certs = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = [c.log_bound for c in certs]
    assert bounds[0] > bounds[1] > bounds[2]  # exponential decrease in n


def test_rdwalk_sec51_matches_paper_shape(benchmark, paper_table1):
    inst = get_benchmark("Rdwalk", n=400)
    cert = benchmark(lambda: hoeffding_synthesis(inst.pts, inst.invariants))
    # paper Section 5.1 column: 1.85e-3; ours is at least that tight (the
    # fused single-location PTS narrows the difference window)
    assert cert.log_bound / math.log(10) <= (
        paper_table1[("Rdwalk", "T>400")].sec51_log10 + 0.5
    )
    assert cert.bound < 1.0


def test_rdwalk_sec32_exponent_shape():
    """The synthesized exponent matches Section 3.2's (-0.351, 0.124)."""
    inst = get_benchmark("Rdwalk", n=500)
    cert = exp_lin_syn(inst.pts, inst.invariants)
    head = inst.pts.init_location
    coeffs = cert.state_function.coeffs[head]
    assert coeffs["x"] == pytest.approx(-0.351, abs=0.02)
    assert coeffs["t"] == pytest.approx(0.124, abs=0.02)
