"""Shared helpers for the benchmark harness.

Every bench regenerates one slice of the paper's evaluation and *asserts
the qualitative shape* the paper claims (who wins, by roughly what factor)
while pytest-benchmark records the runtime.  Benchmarks carry the ``bench``
marker and are excluded from tier-1; run them with::

    pytest -m bench benchmarks/ --benchmark-only

``bench_fixpoint.py`` additionally records sparse-vs-reference fixpoint
timings through the :func:`fixpoint_recorder` fixture; on session exit the
collected entries are appended to ``BENCH_fixpoint.json`` next to the repo
root, building a perf trajectory across runs (see ``PERFORMANCE.md``).
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

#: fixpoint perf entries collected this session (see fixpoint_recorder)
_FIXPOINT_RESULTS = []

BENCH_FIXPOINT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fixpoint.json"


def ln_ratio_log10(baseline_ln: float, ours_ln: float) -> float:
    """log10 of (baseline bound / our bound)."""
    return (baseline_ln - ours_ln) / math.log(10.0)


@pytest.fixture(scope="session")
def paper_table1():
    from repro.experiments.reference import TABLE1

    return TABLE1


@pytest.fixture(scope="session")
def paper_table2():
    from repro.experiments.reference import TABLE2

    return TABLE2


@pytest.fixture(scope="session")
def fixpoint_recorder():
    """Append-callback for fixpoint perf entries; flushed at session end."""
    return _FIXPOINT_RESULTS.append


def pytest_sessionfinish(session, exitstatus):
    if not _FIXPOINT_RESULTS:
        return
    from repro.experiments.fixpoint_bench import append_bench_run

    append_bench_run(BENCH_FIXPOINT_PATH, _FIXPOINT_RESULTS, source="pytest -m bench")
    _FIXPOINT_RESULTS.clear()
