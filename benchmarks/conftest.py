"""Shared helpers for the benchmark harness.

Every bench regenerates one slice of the paper's evaluation and *asserts
the qualitative shape* the paper claims (who wins, by roughly what factor)
while pytest-benchmark records the runtime.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import math

import pytest


def ln_ratio_log10(baseline_ln: float, ours_ln: float) -> float:
    """log10 of (baseline bound / our bound)."""
    return (baseline_ln - ours_ln) / math.log(10.0)


@pytest.fixture(scope="session")
def paper_table1():
    from repro.experiments.reference import TABLE1

    return TABLE1


@pytest.fixture(scope="session")
def paper_table2():
    from repro.experiments.reference import TABLE2

    return TABLE2
