"""Table 2, Hardware block (M1DWalk, Newton, Ref) — lower bounds.

The first automated lower bounds for assertion violation.  Assertions:

* every lower bound is a valid probability close to the paper's entry;
* larger failure rates give smaller survival lower bounds (monotonicity);
* the Ref rows reproduce the paper's digits (our reconstruction makes the
  analytic survival probability ``(1-p)^15380``, which the paper's numbers
  match exactly);
* the bound beats the [CMR13] previous result on Ref p=1e-7 (paper ratio
  3.33 in failure-probability terms).
"""

import math

import pytest

pytestmark = pytest.mark.bench

from repro.core import exp_low_syn
from repro.programs import get_benchmark

CASES = [
    ("M1DWalk", ["1e-7", "1e-5", "1e-4"]),
    ("Newton", ["5e-4", "1e-3", "1.5e-3"]),
    ("Ref", ["1e-7", "1e-6", "1e-5"]),
]


@pytest.mark.parametrize(
    "name,p", [(name, p) for name, ps in CASES for p in ps]
)
def test_hardware_lower_bound(benchmark, name, p, paper_table2):
    inst = get_benchmark(name, p=p)
    cert = benchmark(lambda: exp_low_syn(inst.pts, inst.invariants))
    assert 0.0 < cert.bound <= 1.0
    paper = paper_table2[(name, f"p={p}")]
    ours_log10 = cert.log_bound / math.log(10.0)
    # within an order of magnitude in failure probability
    assert ours_log10 == pytest.approx(paper.sec6_log10, abs=0.35)


@pytest.mark.parametrize("name,ps", CASES)
def test_hardware_monotone_in_failure_rate(benchmark, name, ps):
    def run():
        return [
            exp_low_syn(get_benchmark(name, p=p).pts, get_benchmark(name, p=p).invariants)
            for p in ps
        ]

    certs = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = [c.bound for c in certs]
    assert bounds[0] > bounds[1] > bounds[2]


def test_ref_reproduces_paper_digits(benchmark):
    inst = get_benchmark("Ref", p="1e-7")
    cert = benchmark(lambda: exp_low_syn(inst.pts, inst.invariants))
    assert cert.bound == pytest.approx(0.998463, abs=2e-6)


def test_ref_beats_cmr13_baseline():
    """Paper Table 2: [CMR13] reports 0.994885; ratio (1-prev)/(1-ours) = 3.33."""
    inst = get_benchmark("Ref", p="1e-7")
    cert = exp_low_syn(inst.pts, inst.invariants)
    prev = 0.994885
    ratio = (1.0 - prev) / (1.0 - cert.bound)
    assert ratio == pytest.approx(3.33, abs=0.15)


def test_m1dwalk_termination_is_proved(benchmark):
    inst = get_benchmark("M1DWalk", p="1e-5")
    cert = benchmark(lambda: exp_low_syn(inst.pts, inst.invariants))
    assert cert.termination_certificate is not None
    assert cert.termination_certificate.check_on_trajectories(inst.pts, episodes=20)
