"""Table 1, Deviation block (RdAdder, Robot).

Regenerates the three-column comparison — Section 5.1, Section 5.2 and the
[CS13] endpoint-Hoeffding previous result — for each deviation parameter,
and asserts the paper's qualitative claims:

* Section 5.2 (complete) beats the [CS13] column on every row;
* Section 5.2 is at least as tight as Section 5.1.
"""

import math

import pytest

pytestmark = pytest.mark.bench

from repro.core import cs13_deviation_bound, exp_lin_syn, hoeffding_synthesis
from repro.programs import get_benchmark

RDADDER_DEVIATIONS = [25, 50, 75]
ROBOT_DEVIATIONS = ["1.8", "2.0", "2.2"]


@pytest.mark.parametrize("deviation", RDADDER_DEVIATIONS)
def test_rdadder_sec52(benchmark, deviation, paper_table1):
    inst = get_benchmark("RdAdder", deviation=deviation)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    baseline_ln = cs13_deviation_bound(500, deviation, 1.0)
    # the complete algorithm beats the endpoint Hoeffding baseline
    assert cert.log_bound <= baseline_ln + 1e-6
    paper = paper_table1[("RdAdder", f"d={deviation}")]
    # same order of magnitude as the paper's Section 5.2 column
    assert cert.log_bound / math.log(10) == pytest.approx(paper.sec52_log10, abs=1.0)


@pytest.mark.parametrize("deviation", RDADDER_DEVIATIONS)
def test_rdadder_sec51(benchmark, deviation):
    inst = get_benchmark("RdAdder", deviation=deviation)
    cert51 = benchmark(lambda: hoeffding_synthesis(inst.pts, inst.invariants))
    cert52 = exp_lin_syn(inst.pts, inst.invariants)
    assert cert52.log_bound <= cert51.log_bound + 1e-9
    assert cert51.bound < 1.0  # informative


@pytest.mark.parametrize("deviation", ROBOT_DEVIATIONS)
def test_robot_sec52(benchmark, deviation, paper_table1):
    inst = get_benchmark("Robot", deviation=deviation)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    baseline_ln = cs13_deviation_bound(60, float(deviation), 0.1)
    assert cert.log_bound <= baseline_ln + 1e-6
    paper = paper_table1[("Robot", f"d={deviation}")]
    assert cert.log_bound / math.log(10) == pytest.approx(paper.sec52_log10, abs=1.0)


def test_robot_sec51_order(benchmark):
    """Section 5.1 on Robot is loose (paper: 1.66e-1 at d=1.8) but sound."""
    inst = get_benchmark("Robot", deviation="1.8")
    cert = benchmark(lambda: hoeffding_synthesis(inst.pts, inst.invariants))
    assert 0.0 < cert.bound <= 1.0
