"""Table 1, StoInv block (1DWalk, 2DWalk, 3DWalk, Race).

This is where the paper's headline numbers live — bounds up to thousands of
orders of magnitude below the [CNZ17] Azuma baseline.  Assertions:

* Section 5.2 beats the Azuma baseline enormously (>= 30 orders of
  magnitude on every walk);
* Race reproduces the paper's bound 1.52e-7 to within a few percent;
* 1DWalk x=10 reproduces the paper's 7.82e-208 almost exactly.
"""

import math

import pytest

pytestmark = pytest.mark.bench

from repro.core import azuma_baseline, exp_lin_syn, hoeffding_synthesis
from repro.programs import get_benchmark

LN10 = math.log(10.0)

WALK_CASES = [
    ("1DWalk", dict(x0=10)),
    ("1DWalk", dict(x0=50)),
    ("1DWalk", dict(x0=100)),
    ("2DWalk", dict(x0=1000, y0=10)),
    ("2DWalk", dict(x0=500, y0=40)),
    ("2DWalk", dict(x0=400, y0=50)),
    ("3DWalk", dict(x0=100, y0=100, z0=100)),
    ("3DWalk", dict(x0=100, y0=150, z0=200)),
    ("3DWalk", dict(x0=300, y0=100, z0=150)),
]


@pytest.mark.parametrize("name,kwargs", WALK_CASES)
def test_stoinv_sec52(benchmark, name, kwargs):
    inst = get_benchmark(name, **kwargs)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    assert cert.log_bound / LN10 < -25  # all paper entries are <= 1e-29


@pytest.mark.parametrize("name,kwargs", WALK_CASES[:3])
def test_stoinv_beats_azuma_by_many_orders(benchmark, name, kwargs):
    inst = get_benchmark(name, **kwargs)

    def run():
        ours = exp_lin_syn(inst.pts, inst.invariants)
        base = azuma_baseline(inst.pts, inst.invariants)
        return ours, base

    ours, base = benchmark.pedantic(run, rounds=1, iterations=1)
    gain_orders = (base.log_bound - ours.log_bound) / LN10
    assert gain_orders >= 30.0


def test_1dwalk_matches_paper_exactly(benchmark, paper_table1):
    inst = get_benchmark("1DWalk", x0=10)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    # paper: 7.82e-208
    assert cert.log_bound / LN10 == pytest.approx(
        paper_table1[("1DWalk", "x=10")].sec52_log10, abs=0.5
    )


@pytest.mark.parametrize("x0,y0", [(40, 0), (35, 0), (45, 0)])
def test_race_sec52(benchmark, x0, y0, paper_table1):
    inst = get_benchmark("Race", x0=x0, y0=y0)
    cert = benchmark(lambda: exp_lin_syn(inst.pts, inst.invariants))
    paper = paper_table1[("Race", f"({x0},{y0})")]
    assert cert.log_bound / LN10 == pytest.approx(paper.sec52_log10, abs=0.5)


@pytest.mark.parametrize("x0,y0", [(40, 0)])
def test_race_sec51(benchmark, x0, y0, paper_table1):
    inst = get_benchmark("Race", x0=x0, y0=y0)
    cert = benchmark(lambda: hoeffding_synthesis(inst.pts, inst.invariants))
    paper = paper_table1[("Race", f"({x0},{y0})")]
    # at least as tight as the paper's Section 5.1 column (our fused
    # single-location PTS gives the RepRSM more slack per step), but never
    # tighter than the complete Section 5.2 bound
    assert cert.log_bound / LN10 <= paper.sec51_log10 + 0.5
    cert52 = exp_lin_syn(inst.pts, inst.invariants)
    assert cert.log_bound >= cert52.log_bound - 1e-9
