"""Micro-benchmarks for the substrates the synthesis algorithms lean on.

These are the pieces the paper delegated to PPL/CVX; their costs dominate
the per-row runtimes of Table 1, so we track them separately.
"""

import random

import pytest

pytestmark = pytest.mark.bench

from repro.lang import compile_source, parse_program
from repro.numeric.lp import LinearProgram
from repro.polyhedra import Polyhedron, polyhedron_generators
from repro.polyhedra.linexpr import LinExpr
from repro.core import generate_interval_invariants, generate_zone_invariants, value_iteration

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""


def test_bench_parser(benchmark):
    program = benchmark(lambda: parse_program(RACE))
    assert program.variables() == ("x", "y")


def test_bench_compiler(benchmark):
    result = benchmark(lambda: compile_source(RACE, name="race"))
    assert len(result.pts.interior_locations) >= 1


def test_bench_dd_hypercube(benchmark):
    """DD on a 4-cube: 16 vertices from 8 halfspaces."""
    poly = Polyhedron.from_box({f"v{i}": (0, 1) for i in range(4)})
    gens = benchmark(lambda: polyhedron_generators(poly))
    assert len(gens.points) == 16


def test_bench_dd_unbounded(benchmark):
    """DD with rays and a line (the Prop. 1 decomposition shape)."""
    poly = Polyhedron.from_box({"x": (None, 99), "y": (None, 99)}).with_variables(
        ["x", "y", "z"]
    )
    gens = benchmark(lambda: polyhedron_generators(poly))
    assert gens.lines and gens.rays


def test_bench_lp_medium(benchmark):
    """A Farkas-sized LP (120 vars, 160 rows)."""
    rng = random.Random(1)

    def build_and_solve():
        lp = LinearProgram()
        for i in range(120):
            lp.add_variable(f"u{i}", lower=0.0)
        for j in range(160):
            expr = LinExpr(
                {f"u{rng.randrange(120)}": rng.randint(1, 5) for _ in range(6)},
                -rng.randint(1, 50),
            )
            lp.add_le(-expr)  # sum >= const
        return lp.solve(minimize=LinExpr({f"u{i}": 1 for i in range(120)}))

    values = benchmark(build_and_solve)
    assert values


def test_bench_interval_invariants(benchmark):
    pts = compile_source(RACE, name="race").pts
    inv = benchmark(lambda: generate_interval_invariants(pts))
    assert inv.of(pts.init_location).inequalities


def test_bench_zone_invariants(benchmark):
    pts = compile_source(RACE, name="race").pts
    inv = benchmark(lambda: generate_zone_invariants(pts))
    assert inv.of(pts.init_location).inequalities


def test_bench_value_iteration_race(benchmark):
    pts = compile_source(RACE, name="race").pts
    result = benchmark(lambda: value_iteration(pts))
    assert result.tight
