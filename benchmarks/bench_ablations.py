"""Ablation benches for the design choices called out in DESIGN.md.

* **Remark 2** — Hoeffding factor (8 eps / delta^2) vs Azuma factor
  (4 eps / delta^2) on the same RepRSM machinery;
* **completeness gap** — Section 5.2 vs Section 5.1 on the same instance;
* **Jensen tightness** — how close the Section 6 lower bound comes to the
  exact ``vpf`` from value iteration;
* **invariant quality** — synthesized bound with generated interval
  invariants vs trivial (universe) invariants;
* **substrate cost** — double description and Farkas encoding in isolation.
"""

import math

import pytest

pytestmark = pytest.mark.bench

from repro.core import (
    InvariantMap,
    azuma_baseline,
    exp_lin_syn,
    exp_low_syn,
    hoeffding_synthesis,
    value_iteration,
)
from repro.polyhedra import AffineIneq, Polyhedron, decompose, FarkasEncoder
from repro.polyhedra.linexpr import var
from repro.programs import get_benchmark

LN10 = math.log(10.0)


def test_ablation_remark2_hoeffding_vs_azuma(benchmark):
    """The 8/4 factor alone roughly squares the bound (Remark 2)."""
    inst = get_benchmark("Race", x0=40, y0=0)

    def run():
        return (
            hoeffding_synthesis(inst.pts, inst.invariants),
            azuma_baseline(inst.pts, inst.invariants),
        )

    hoeff, azuma = benchmark.pedantic(run, rounds=1, iterations=1)
    assert hoeff.log_bound < azuma.log_bound
    # with the same eta, the bound exponent doubles; the synthesized eta
    # differs slightly, so require at least a 1.5x exponent gain
    assert hoeff.log_bound <= 1.5 * azuma.log_bound


def test_ablation_completeness_gap(benchmark):
    """Section 5.2's completeness buys ~3 extra orders of magnitude on Race."""
    inst = get_benchmark("Race", x0=40, y0=0)

    def run():
        return (
            exp_lin_syn(inst.pts, inst.invariants),
            hoeffding_synthesis(inst.pts, inst.invariants),
        )

    complete, incomplete = benchmark.pedantic(run, rounds=1, iterations=1)
    gap_orders = (incomplete.log_bound - complete.log_bound) / LN10
    # the paper's gap on Race is ~3 orders (9.08e-4 vs 1.52e-7); our
    # Hoeffding path is much stronger (fused PTS + per-transition C2), so
    # the residual completeness gap shrinks but never inverts
    assert gap_orders >= 0.3


def test_ablation_jensen_tightness(benchmark):
    """On M1DWalk the Jensen-relaxed lower bound nearly meets the truth."""
    inst = get_benchmark("M1DWalk", p="1e-4")

    def run():
        cert = exp_low_syn(inst.pts, inst.invariants)
        vi = value_iteration(inst.pts, max_states=3000)
        return cert, vi

    cert, vi = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cert.bound <= vi.upper + 1e-9
    # tightness: the lower bound captures almost all of the truth
    assert cert.bound >= vi.upper - 0.02


def test_ablation_invariant_quality(benchmark):
    """Universe invariants destroy the Prspeed bound; intervals recover it."""
    inst = get_benchmark("Prspeed", n=150)

    def run():
        good = exp_lin_syn(inst.pts, inst.invariants)
        trivial = exp_lin_syn(inst.pts, InvariantMap(inst.pts))
        return good, trivial

    good, trivial = benchmark.pedantic(run, rounds=1, iterations=1)
    assert good.log_bound < trivial.log_bound - 10.0


def test_substrate_double_description(benchmark):
    """DD on the kind of polyhedron every canonical constraint produces."""
    poly = Polyhedron.from_box({"x": (0, 50), "t": (1, 151)}).and_ineqs(
        [AffineIneq.le(var("x") + var("t"), 180)]
    )
    dec = benchmark(lambda: decompose(poly))
    assert dec.verify()
    assert dec.generators.is_polytope


def test_substrate_farkas_encoding(benchmark):
    """Farkas encoding of a C3-style implication block."""
    poly = Polyhedron.from_box({"x": (0, 100), "t": (0, 500)})

    def run():
        enc = FarkasEncoder()
        return enc.encode_implication(
            poly,
            {"x": var("ax"), "t": var("at")},
            var("rhs"),
            label="bench",
        )

    block = benchmark(run)
    assert len(block) >= poly.variables.__len__()
