"""Sparse fixpoint engine vs the legacy pure-Python reference.

Times both engines on the workload shapes that stress different paths — a
tiny chain (call overhead), an iteration-heavy slow-mixing chain (the
dense Gauss-Seidel operator path), state-heavy truncated walks (the CSR
path and the int64 frontier explorer), and the fractional Table 1 shapes
riding the scaled-lattice fixed-point explorer — asserting bracket
agreement and recording every entry to ``BENCH_fixpoint.json`` through the
session recorder in ``conftest.py``.

The recorded trajectory is also a *regression gate*: a run whose
``sparse_seconds`` degrades more than 2x against the best time ever
recorded for the same workload (program + state budget) fails, so a perf
regression cannot land silently just because the brackets still agree.
"""

import os
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

from repro.lang import compile_source
from repro.core.fixpoint import value_iteration
from repro.core import fixpoint_reference
from repro.experiments.fixpoint_bench import (
    FIXPOINT_WORKLOADS,
    best_recorded_sparse_seconds,
    explore_timings,
)

#: same location conftest.py flushes the session recorder to
BENCH_FIXPOINT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fixpoint.json"

#: tolerated slowdown against the best recorded run before the gate trips.
#: The trajectory file is committed, so the baseline may come from faster
#: hardware — override with REPRO_BENCH_GATE_FACTOR (0 disables the gate)
#: when benchmarking on a slower machine.
REGRESSION_FACTOR = float(os.environ.get("REPRO_BENCH_GATE_FACTOR", "2.0"))


@pytest.mark.parametrize("name", sorted(FIXPOINT_WORKLOADS))
def test_sparse_engine_vs_reference(name, fixpoint_recorder, benchmark):
    source, max_states, integer_mode = FIXPOINT_WORKLOADS[name]
    pts = compile_source(source, name=name, integer_mode=integer_mode).pts

    start = time.perf_counter()
    fast = benchmark(lambda: value_iteration(pts, max_states=max_states))
    sparse_seconds = time.perf_counter() - start
    if benchmark.stats is not None:  # None under --benchmark-disable
        sparse_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
    reference_seconds = time.perf_counter() - start

    # exploration phase alone: the int64 frontier path vs the Fraction BFS
    explore_fields = explore_timings(pts, max_states)

    # the rewrite must not change the semantics: same explored fragment,
    # same truncation, brackets equal to iteration tolerance
    assert fast.states == ref.states
    assert fast.truncated == ref.truncated
    assert abs(fast.lower - ref.lower) <= 1e-9
    assert abs(fast.upper - ref.upper) <= 1e-9

    # regression gate: compare against the best run already on disk (the
    # session recorder appends *after* the session, so the baseline never
    # includes this very measurement)
    best = best_recorded_sparse_seconds(BENCH_FIXPOINT_PATH, name, max_states)
    if REGRESSION_FACTOR > 0 and best is not None and sparse_seconds > REGRESSION_FACTOR * best:
        pytest.fail(
            f"fixpoint perf regression on {name!r}: sparse engine took "
            f"{sparse_seconds:.3f}s, more than {REGRESSION_FACTOR:.1f}x the "
            f"best recorded {best:.3f}s (BENCH_fixpoint.json; baseline may "
            f"be from faster hardware — see REPRO_BENCH_GATE_FACTOR)"
        )

    fixpoint_recorder(
        {
            "program": name,
            "max_states": max_states,
            "states": fast.states,
            "iterations": fast.iterations,
            "truncated": fast.truncated,
            "lower": fast.lower,
            "upper": fast.upper,
            "sparse_seconds": round(sparse_seconds, 6),
            **explore_fields,
            "reference_seconds": round(reference_seconds, 6),
            "speedup": round(reference_seconds / sparse_seconds, 2),
            "bracket_error": max(
                abs(fast.lower - ref.lower), abs(fast.upper - ref.upper)
            ),
        }
    )
