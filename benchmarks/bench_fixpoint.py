"""Sparse fixpoint engine vs the legacy pure-Python reference.

Times both engines on the workload shapes that stress different paths — a
tiny chain (call overhead), an iteration-heavy slow-mixing chain (the
dense Gauss-Seidel operator path), state-heavy truncated walks (the CSR
path and the int64 frontier explorer), the fractional Table 1 shapes
riding the scaled-lattice fixed-point explorer, and the slow-mixing
gambler-N ladder exercising the solve-then-certify oracles — asserting
bracket agreement and recording every entry to ``BENCH_fixpoint.json``
through the session recorder in ``conftest.py``.  The ladder workloads
skip the reference engine (pure-Python sweeps would take minutes to
hours) and are validated against the analytic violation probability
(1/4: the assert fires on the rich exit x = N, entered from x = N/4)
instead.

The recorded trajectory is also a *regression gate*: a run whose
end-to-end ``sparse_seconds`` — or value-iteration-phase ``vi_seconds`` —
degrades more than 2x against the best time ever recorded for the same
workload (program + state budget) fails, so a perf regression cannot land
silently just because the brackets still agree.

Every bench run additionally emits its translation-validation
:class:`~repro.core.runcert.RunCertificate` and verifies it in-process;
set ``REPRO_BENCH_CERT_DIR`` to also persist the certificates (the bench
workflow uploads that directory as an artifact next to
``BENCH_fixpoint.json``).
"""

import os
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

from repro.lang import compile_source
from repro.core.fixpoint import build_sparse_model, iterate_model
from repro.core import fixpoint_reference
from repro.experiments.fixpoint_bench import (
    FIXPOINT_WORKLOADS,
    SLOW_MIXING_ANALYTIC_VPF,
    SLOW_MIXING_WORKLOADS,
    best_recorded_seconds,
    explore_timings,
)

#: same location conftest.py flushes the session recorder to
BENCH_FIXPOINT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fixpoint.json"

#: tolerated slowdown against the best recorded run before the gate trips.
#: The trajectory file is committed, so the baseline may come from faster
#: hardware — override with REPRO_BENCH_GATE_FACTOR (0 disables the gate)
#: when benchmarking on a slower machine.
REGRESSION_FACTOR = float(os.environ.get("REPRO_BENCH_GATE_FACTOR", "2.0"))

#: absolute slack added on top of the ratio gate.  The tiny workloads
#: finish their phases in well under a millisecond, where wall-clock is
#: scheduler jitter rather than engine work — a pure 2x ratio against a
#: 0.3 ms baseline would flake under a loaded bench session.
NOISE_FLOOR_SECONDS = 0.005


def _gate(name: str, max_states: int, field: str, measured: float) -> None:
    """Fail when ``measured`` degrades more than REGRESSION_FACTOR x the
    best ``field`` timing already on disk, beyond an absolute noise floor
    (the session recorder appends *after* the session, so the baseline
    never includes this very measurement)."""
    best = best_recorded_seconds(BENCH_FIXPOINT_PATH, name, max_states, field)
    if (
        REGRESSION_FACTOR > 0
        and best is not None
        and measured > REGRESSION_FACTOR * best + NOISE_FLOOR_SECONDS
    ):
        pytest.fail(
            f"fixpoint perf regression on {name!r}: {field} took "
            f"{measured:.3f}s, more than {REGRESSION_FACTOR:.1f}x the "
            f"best recorded {best:.3f}s (BENCH_fixpoint.json; baseline may "
            f"be from faster hardware — see REPRO_BENCH_GATE_FACTOR)"
        )


@pytest.mark.parametrize("name", sorted(FIXPOINT_WORKLOADS))
def test_sparse_engine_vs_reference(name, fixpoint_recorder, benchmark):
    source, max_states, integer_mode = FIXPOINT_WORKLOADS[name]
    pts = compile_source(source, name=name, integer_mode=integer_mode).pts

    model = build_sparse_model(pts, max_states=max_states)
    start = time.perf_counter()
    fast = benchmark(lambda: iterate_model(model))
    vi_seconds = time.perf_counter() - start
    if benchmark.stats is not None:  # None under --benchmark-disable
        vi_seconds = benchmark.stats.stats.mean
    start = time.perf_counter()
    build_sparse_model(pts, max_states=max_states)
    build_seconds = time.perf_counter() - start
    sparse_seconds = build_seconds + vi_seconds

    # exploration phase alone: the int64 frontier path vs the Fraction BFS
    explore_fields = explore_timings(pts, max_states)

    entry = {
        "program": name,
        "max_states": max_states,
        "states": fast.states,
        "iterations": fast.iterations,
        "truncated": fast.truncated,
        "lower": fast.lower,
        "upper": fast.upper,
        "sparse_seconds": round(sparse_seconds, 6),
        "vi_seconds": round(vi_seconds, 6),
        "solver": fast.solver,
        "certified": fast.certified,
        "certify_sweeps": fast.certify_sweeps,
        **explore_fields,
    }
    if fast.oracle_residual is not None:
        entry["oracle_residual"] = fast.oracle_residual

    if name in SLOW_MIXING_WORKLOADS:
        # pure-Python reference sweeps are impractical on the ladder;
        # the bracket must contain the analytic violation probability
        assert fast.lower - 1e-9 <= SLOW_MIXING_ANALYTIC_VPF <= fast.upper + 1e-9
        entry["analytic_vpf"] = SLOW_MIXING_ANALYTIC_VPF
        entry["analytic_error"] = max(
            0.0,
            fast.lower - SLOW_MIXING_ANALYTIC_VPF,
            SLOW_MIXING_ANALYTIC_VPF - fast.upper,
        )
    else:
        start = time.perf_counter()
        ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
        reference_seconds = time.perf_counter() - start

        # the rewrite must not change the semantics: same explored
        # fragment, same truncation, and a bracket that never escapes the
        # reference's outward by more than the iteration tolerance (a
        # *certified* oracle bracket may legitimately be tighter)
        assert fast.states == ref.states
        assert fast.truncated == ref.truncated
        assert fast.lower >= ref.lower - 1e-9
        assert fast.upper <= ref.upper + 1e-9
        assert fast.lower <= fast.upper + 1e-12

        entry["reference_seconds"] = round(reference_seconds, 6)
        entry["speedup"] = round(reference_seconds / sparse_seconds, 2)
        entry["bracket_error"] = max(
            0.0, ref.lower - fast.lower, fast.upper - ref.upper
        )

    _gate(name, max_states, "sparse_seconds", sparse_seconds)
    _gate(name, max_states, "vi_seconds", vi_seconds)

    # every bench run carries its proof: emit the run certificate, verify
    # it in-process (a failing check fails the bench), and persist it when
    # the workflow asked for artifacts (REPRO_BENCH_CERT_DIR)
    from repro.core.runcert import emit_run_certificate, verify_run_certificate

    cert = emit_run_certificate(
        pts,
        model,
        fast,
        max_states=max_states,
        name=name,
        source=source,
        integer_mode=integer_mode,
    )
    report = verify_run_certificate(cert, pts=pts)
    assert report.ok, "\n".join(report.render())
    cert_dir = os.environ.get("REPRO_BENCH_CERT_DIR")
    if cert_dir:
        Path(cert_dir).mkdir(parents=True, exist_ok=True)
        cert.save(Path(cert_dir) / f"{name}.cert.json")

    fixpoint_recorder(entry)
