"""Sparse fixpoint engine vs the legacy pure-Python reference.

Times both engines on the three workload shapes that stress different
paths — a tiny chain (call overhead), an iteration-heavy slow-mixing chain
(the dense Gauss-Seidel operator path), and a state-heavy truncated walk
(the CSR path) — asserting bracket agreement and recording every entry to
``BENCH_fixpoint.json`` through the session recorder in ``conftest.py``.
"""

import time

import pytest

pytestmark = pytest.mark.bench

from repro.lang import compile_source
from repro.core.fixpoint import value_iteration
from repro.core import fixpoint_reference
from repro.experiments.fixpoint_bench import FIXPOINT_WORKLOADS


@pytest.mark.parametrize("name", sorted(FIXPOINT_WORKLOADS))
def test_sparse_engine_vs_reference(name, fixpoint_recorder, benchmark):
    source, max_states = FIXPOINT_WORKLOADS[name]
    pts = compile_source(source, name=name).pts

    start = time.perf_counter()
    fast = benchmark(lambda: value_iteration(pts, max_states=max_states))
    sparse_seconds = time.perf_counter() - start
    if benchmark.stats is not None:  # None under --benchmark-disable
        sparse_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
    reference_seconds = time.perf_counter() - start

    # the rewrite must not change the semantics: same explored fragment,
    # same truncation, brackets equal to iteration tolerance
    assert fast.states == ref.states
    assert fast.truncated == ref.truncated
    assert abs(fast.lower - ref.lower) <= 1e-9
    assert abs(fast.upper - ref.upper) <= 1e-9

    fixpoint_recorder(
        {
            "program": name,
            "max_states": max_states,
            "states": fast.states,
            "iterations": fast.iterations,
            "truncated": fast.truncated,
            "lower": fast.lower,
            "upper": fast.upper,
            "sparse_seconds": round(sparse_seconds, 6),
            "reference_seconds": round(reference_seconds, 6),
            "speedup": round(reference_seconds / sparse_seconds, 2),
            "bracket_error": max(
                abs(fast.lower - ref.lower), abs(fast.upper - ref.upper)
            ),
        }
    )
