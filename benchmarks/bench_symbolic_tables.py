"""Appendix Tables 3/4/5 — symbolic bound regeneration.

Renders the synthesized templates in the paper's symbolic style and checks
representative coefficient values against the appendix rows.
"""

import pytest

pytestmark = pytest.mark.bench

from repro.experiments.symbolic_tables import (
    run_symbolic_tables,
    symbolic_row_51,
    symbolic_row_52,
    symbolic_row_6,
)


def test_table3_race_row(benchmark):
    """Table 3, Race (40,0): exp(8 * 0.08 * (-0.67x + 0.5y + 16.58))."""
    row = benchmark(lambda: symbolic_row_51("Race", dict(x0=40, y0=0), "(40,0)"))
    assert not row.error
    assert "exp(8 *" in row.rendered
    assert "x" in row.rendered and "y" in row.rendered


def test_table4_race_row(benchmark):
    """Table 4, Race (40,0): exp(-1.18x + 0.85y + 31.79)."""
    row = benchmark(lambda: symbolic_row_52("Race", dict(x0=40, y0=0), "(40,0)"))
    assert not row.error
    assert "1.1" in row.rendered  # the -1.18-ish x coefficient
    assert "31." in row.rendered or "32" in row.rendered


def test_table5_m1dwalk_row(benchmark):
    """Table 5, M1DWalk p=1e-4: exp(2e-4 x - 0.02)."""
    row = benchmark(lambda: symbolic_row_6("M1DWalk", dict(p="1e-4"), "p=1e-4"))
    assert not row.error
    assert row.rendered.startswith("exp(")


def test_symbolic_tables_subset(benchmark):
    """Render one row per table end-to-end through the public driver."""
    specs1 = [("Race", dict(x0=40, y0=0), "(40,0)")]
    specs2 = [("M1DWalk", dict(p="1e-4"), "p=1e-4")]
    rows = benchmark.pedantic(
        lambda: run_symbolic_tables(specs1=specs1, specs2=specs2),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 3
    assert all(not r.error for r in rows)
